#include "apps/oda_monitor.hpp"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/stats.hpp"
#include "observe/export.hpp"

namespace oda::apps {

using observe::SloState;

OdaMonitor::OdaMonitor(stream::Broker& broker, storage::TierManager& tiers,
                       MonitorThresholds thresholds)
    : broker_(broker), tiers_(tiers), thresholds_(thresholds) {
  slos_.add({.name = "stream.lag",
             .subject = "fleet consumer lag vs broker offsets",
             .unit = "records",
             .warn = static_cast<double>(thresholds_.lag_warn),
             .crit = static_cast<double>(thresholds_.lag_crit),
             .breach_hold = thresholds_.breach_hold,
             .clear_after = thresholds_.clear_after});
  slos_.add({.name = "pipeline.freshness",
             .subject = "worst watermark delay across watched queries",
             .unit = "us",
             .warn = static_cast<double>(thresholds_.freshness_warn),
             .crit = static_cast<double>(thresholds_.freshness_crit),
             .breach_hold = thresholds_.breach_hold,
             .clear_after = thresholds_.clear_after});
  slos_.add({.name = "telemetry.drops",
             .subject = "collection records dropped after retries",
             .unit = "records",
             .warn = thresholds_.drop_warn,
             .crit = thresholds_.drop_crit,
             .breach_hold = 0,
             .clear_after = thresholds_.clear_after});
}

void OdaMonitor::watch_query(const pipeline::StreamingQuery& query) {
  watched_.push_back(&query);
}

void OdaMonitor::watch_query(const engine::Query& query) { watched_engine_.push_back(&query); }

void OdaMonitor::watch_engine(const engine::Engine& engine) { engines_.push_back(&engine); }

void OdaMonitor::tick(common::TimePoint now) {
  last_tick_ = now;

  // Consumer lag: walk the broker's committed-offset store against each
  // partition's end offset. Groups that never committed don't appear —
  // their lag is invisible to the broker too.
  for (const auto& row : broker_.committed_offsets()) {
    const stream::Topic* t = broker_.find_topic(row.tp.topic);
    if (t == nullptr || row.tp.partition >= t->num_partitions()) continue;
    lag_.observe_offsets(row.group, row.tp.topic, row.tp.partition,
                         t->partition(row.tp.partition).end_offset(), row.offset);
  }

  // Watermark freshness per watched query.
  for (const pipeline::StreamingQuery* q : watched_) {
    lag_.observe_watermark(q->name(), q->watermark(), now);
  }
  for (const engine::Query* q : watched_engine_) {
    lag_.observe_watermark(q->name(), q->watermark(), now);
  }

  // Tier backlogs from the tier manager's own report.
  for (const auto& r : tiers_.report()) {
    lag_.observe_backlog(storage::tier_name(r.tier), r.bytes, r.items);
  }

  // SLO evaluation.
  slos_.update("stream.lag", static_cast<double>(lag_.fleet_lag()), now);
  common::Duration worst_delay = 0;
  for (const auto& ws : lag_.watermarks()) worst_delay = std::max(worst_delay, ws.delay);
  if (!watched_.empty() || !watched_engine_.empty()) {
    slos_.update("pipeline.freshness", static_cast<double>(worst_delay), now);
  }
  const double drops = static_cast<double>(
      observe::default_registry().counter("telemetry.dropped.records")->value());
  slos_.update("telemetry.drops", drops, now);
}

std::string OdaMonitor::render() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "=== ODA self-observability monitor  [%s]  vt=%" PRId64 " ===\n",
                observe::slo_state_name(overall()), last_tick_);
  out += buf;
  out += observe::slos_to_text(slos_);

  const auto groups = lag_.group_lags();
  if (!groups.empty()) {
    out += "-- consumer lag --\n";
    for (const auto& g : groups) {
      std::snprintf(buf, sizeof(buf), "  %-20s %-24s lag=%" PRId64 " (peak %" PRId64 ", %zu parts)\n",
                    g.group.c_str(), g.topic.c_str(), g.total_lag, g.peak_lag,
                    g.partitions.size());
      out += buf;
    }
  }

  const auto wms = lag_.watermarks();
  if (!wms.empty()) {
    out += "-- watermarks --\n";
    for (const auto& w : wms) {
      if (w.ever_advanced) {
        std::snprintf(buf, sizeof(buf), "  %-28s wm=%" PRId64 " delay=%" PRId64 "us\n",
                      w.name.c_str(), w.watermark, w.delay);
      } else {
        std::snprintf(buf, sizeof(buf), "  %-28s (never advanced)\n", w.name.c_str());
      }
      out += buf;
    }
  }

  const auto backlogs = lag_.backlogs();
  if (!backlogs.empty()) {
    out += "-- tier backlogs --\n";
    for (const auto& b : backlogs) {
      std::snprintf(buf, sizeof(buf), "  %-10s %12s  %zu items\n", b.tier.c_str(),
                    common::format_bytes(b.bytes).c_str(), b.items);
      out += buf;
    }
  }

  if (!engines_.empty()) {
    out += "-- engines --\n";
    for (std::size_t i = 0; i < engines_.size(); ++i) {
      const engine::Engine* e = engines_[i];
      const engine::EngineStats s = e->stats();
      std::snprintf(buf, sizeof(buf),
                    "  engine%zu  workers=%zu queries=%zu rounds=%" PRIu64 " batches=%" PRIu64
                    " rows=%" PRIu64 " wall=%.3fs\n",
                    i, e->workers(), e->num_queries(), s.rounds, s.batches, s.rows,
                    s.wall_seconds);
      out += buf;
      // Ownership view: which worker owns how many partitions, how many
      // lane results it handed to the merge point, and whether it is
      // still alive (rebalances show up as owned moving between rows).
      for (const auto& [query, ws] : e->worker_info()) {
        std::snprintf(buf, sizeof(buf),
                      "    %-24s worker%zu %s owned=%zu rows=%" PRIu64 " handoffs=%" PRIu64 "\n",
                      query.c_str(), ws.worker, ws.alive ? "up  " : "dead", ws.owned_partitions,
                      ws.rows_fetched, ws.handoffs);
        out += buf;
      }
    }
  }
  return out;
}

std::string OdaMonitor::to_json() const {
  std::string out = "{\"overall\":\"";
  out += observe::slo_state_name(overall());
  out += "\",\"slos\":";
  out += observe::slos_to_json(slos_);
  // slos_to_json ends with "]\n" — trim the newline before continuing.
  if (!out.empty() && out.back() == '\n') out.pop_back();
  out += ",\"fleet_lag\":" + std::to_string(lag_.fleet_lag());
  out += ",\"groups\":[";
  bool first = true;
  for (const auto& g : lag_.group_lags()) {
    if (!first) out += ',';
    first = false;
    out += "{\"group\":\"" + observe::json_escape(g.group) + "\",\"topic\":\"" +
           observe::json_escape(g.topic) + "\",\"lag\":" + std::to_string(g.total_lag) +
           ",\"peak\":" + std::to_string(g.peak_lag) + '}';
  }
  out += "],\"engines\":[";
  first = true;
  for (const engine::Engine* e : engines_) {
    if (!first) out += ',';
    first = false;
    const engine::EngineStats s = e->stats();
    out += "{\"workers\":" + std::to_string(e->workers()) +
           ",\"queries\":" + std::to_string(e->num_queries()) +
           ",\"rounds\":" + std::to_string(s.rounds) +
           ",\"batches\":" + std::to_string(s.batches) + ",\"rows\":" + std::to_string(s.rows) +
           ",\"worker_info\":[";
    bool first_w = true;
    for (const auto& [query, ws] : e->worker_info()) {
      if (!first_w) out += ',';
      first_w = false;
      out += "{\"query\":\"" + observe::json_escape(query) +
             "\",\"worker\":" + std::to_string(ws.worker) +
             ",\"alive\":" + (ws.alive ? "true" : "false") +
             ",\"owned\":" + std::to_string(ws.owned_partitions) +
             ",\"rows\":" + std::to_string(ws.rows_fetched) +
             ",\"handoffs\":" + std::to_string(ws.handoffs) + '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string OdaMonitor::one_line() {
  return observe::one_line_summary(observe::default_registry().snapshot());
}

// ---------------------------------------------------------------------------
// Flight-dump viewer
// ---------------------------------------------------------------------------

namespace {

// Scanners over flight_to_json's fixed key order. They only need to read
// back what the exporter writes, so "not found" is a format error.
[[noreturn]] void bad_flight(const std::string& why) {
  throw std::runtime_error("oda_monitor: not a flight dump (" + why + ")");
}

double scan_number(const std::string& s, const std::string& key, std::size_t from) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = s.find(needle, from);
  if (at == std::string::npos) bad_flight("missing \"" + key + "\"");
  return std::strtod(s.c_str() + at + needle.size(), nullptr);
}

std::string scan_string(const std::string& s, const std::string& key, std::size_t from) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = s.find(needle, from);
  if (at == std::string::npos) bad_flight("missing \"" + key + "\"");
  std::string out;
  for (std::size_t i = at + needle.size(); i < s.size(); ++i) {
    char c = s[i];
    if (c == '"') return out;
    if (c == '\\' && i + 1 < s.size()) {
      c = s[++i];
      switch (c) {
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u':
          // json_escape only \u-encodes control bytes; decode the low byte.
          if (i + 4 < s.size()) {
            out += static_cast<char>(std::strtol(s.substr(i + 1, 4).c_str(), nullptr, 16));
            i += 4;
          }
          break;
        default: out += c;  // \" and
      }
    } else {
      out += c;
    }
  }
  bad_flight("unterminated string for \"" + key + "\"");
}

observe::FlightEventType scan_event_type(const std::string& name) {
  using observe::FlightEventType;
  for (int t = 0; t <= static_cast<int>(FlightEventType::kMark); ++t) {
    const auto et = static_cast<FlightEventType>(t);
    if (name == observe::flight_event_type_name(et)) return et;
  }
  bad_flight("unknown event type '" + name + "'");
}

observe::FlightPhase scan_phase(const std::string& name) {
  using observe::FlightPhase;
  for (int p = 0; p < static_cast<int>(observe::kFlightPhases); ++p) {
    const auto fp = static_cast<FlightPhase>(p);
    if (name == observe::flight_phase_name(fp)) return fp;
  }
  bad_flight("unknown phase '" + name + "'");
}

}  // namespace

observe::FlightDump parse_flight_json(const std::string& text) {
  if (text.find("{\"flight\":{") == std::string::npos) bad_flight("no {\"flight\":...} header");
  observe::FlightDump d;
  d.trigger = scan_string(text, "trigger", 0);
  d.vt = static_cast<common::TimePoint>(scan_number(text, "vt", 0));
  d.capacity = static_cast<std::size_t>(scan_number(text, "capacity", 0));
  d.emitted = static_cast<std::uint64_t>(scan_number(text, "emitted", 0));
  d.dropped = static_cast<std::uint64_t>(scan_number(text, "dropped", 0));

  const std::size_t rings_at = text.find("\"rings\":[");
  if (rings_at == std::string::npos) bad_flight("missing \"rings\"");
  for (std::size_t i = rings_at + 9; i < text.size() && text[i] != ']';) {
    if (text[i] == '"') {
      std::size_t end = i + 1;
      while (end < text.size() && text[end] != '"') end += text[end] == '\\' ? 2 : 1;
      d.ring_names.push_back(text.substr(i + 1, end - i - 1));
      i = end + 1;
    } else {
      ++i;
    }
  }

  d.labels.emplace_back();  // id 0 = ""
  // One event object per line — split on the '\n' the exporter emits
  // before each "{\"ring\":...}".
  std::size_t pos = text.find("\"events\":[");
  if (pos == std::string::npos) bad_flight("missing \"events\"");
  while ((pos = text.find("\n{\"ring\":", pos)) != std::string::npos) {
    const std::size_t eol = text.find('\n', pos + 1);
    const std::string line = text.substr(pos + 1, eol == std::string::npos ? std::string::npos
                                                                           : eol - pos - 1);
    observe::FlightEvent e;
    e.ring = static_cast<std::uint32_t>(scan_number(line, "ring", 0));
    e.seq = static_cast<std::uint64_t>(scan_number(line, "seq", 0));
    e.type = scan_event_type(scan_string(line, "type", 0));
    e.phase = scan_phase(scan_string(line, "phase", 0));
    e.vt = static_cast<common::TimePoint>(scan_number(line, "vt", 0));
    e.wall_ns = static_cast<std::uint64_t>(scan_number(line, "wall_us", 0) * 1e3);
    e.arg = static_cast<std::uint64_t>(scan_number(line, "arg", 0));
    const std::string label = scan_string(line, "label", 0);
    if (!label.empty()) {
      std::size_t id = 0;
      for (; id < d.labels.size(); ++id) {
        if (d.labels[id] == label) break;
      }
      if (id == d.labels.size()) d.labels.push_back(label);
      e.label = static_cast<std::uint32_t>(id);
    }
    d.events.push_back(e);
    pos = eol == std::string::npos ? text.size() : eol;
  }
  return d;
}

std::string render_flight(const observe::FlightDump& d, std::size_t tail) {
  using observe::FlightEventType;
  using observe::FlightPhase;
  std::string out;
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "=== flight dump  trigger=%s  vt=%" PRId64 "  events=%zu (emitted=%" PRIu64
                " dropped=%" PRIu64 ", %zu rings x %zu slots) ===\n",
                d.trigger.c_str(), d.vt, d.events.size(), d.emitted, d.dropped,
                d.ring_names.size(), d.capacity);
  out += buf;

  // Per-ring wall time per phase: pair begin/end in timeline order (the
  // dump is already ordered, and pairs never interleave within one ring).
  const std::size_t rings = d.ring_names.size();
  std::vector<std::array<double, observe::kFlightPhases>> phase_ms(rings);
  std::vector<std::array<std::uint64_t, observe::kFlightPhases>> open_ns(rings);
  std::vector<std::uint64_t> faults(rings, 0), retries(rings, 0), rebalances(rings, 0);
  std::vector<std::uint64_t> counts(rings, 0);
  for (auto& a : phase_ms) a.fill(0.0);
  for (auto& a : open_ns) a.fill(UINT64_MAX);
  for (const observe::FlightEvent& e : d.events) {
    if (e.ring >= rings) continue;
    ++counts[e.ring];
    const auto p = static_cast<std::size_t>(e.phase);
    switch (e.type) {
      case FlightEventType::kPhaseBegin: open_ns[e.ring][p] = e.wall_ns; break;
      case FlightEventType::kPhaseEnd:
        if (open_ns[e.ring][p] != UINT64_MAX && e.wall_ns >= open_ns[e.ring][p]) {
          phase_ms[e.ring][p] += static_cast<double>(e.wall_ns - open_ns[e.ring][p]) / 1e6;
        }
        open_ns[e.ring][p] = UINT64_MAX;
        break;
      case FlightEventType::kFault: ++faults[e.ring]; break;
      case FlightEventType::kRetry: ++retries[e.ring]; break;
      case FlightEventType::kRebalance: ++rebalances[e.ring]; break;
      default: break;
    }
  }
  out += "-- phase timeline (wall ms; [barrier] = stall waiting on the team) --\n";
  std::snprintf(buf, sizeof(buf), "  %-8s %10s %10s %10s %12s %10s %10s %6s %6s %6s %6s\n", "ring",
                "fetch", "decode", "operate", "[barrier]", "merge", "commit", "fault", "retry",
                "rebal", "evts");
  out += buf;
  for (std::size_t r = 0; r < rings; ++r) {
    const auto& ms = phase_ms[r];
    char barrier[16];
    std::snprintf(barrier, sizeof(barrier), "[%.3f]",
                  ms[static_cast<std::size_t>(FlightPhase::kBarrier)]);
    std::snprintf(buf, sizeof(buf),
                  "  %-8s %10.3f %10.3f %10.3f %12s %10.3f %10.3f %6" PRIu64 " %6" PRIu64
                  " %6" PRIu64 " %6" PRIu64 "\n",
                  d.ring_name(static_cast<std::uint32_t>(r)).c_str(),
                  ms[static_cast<std::size_t>(FlightPhase::kFetch)],
                  ms[static_cast<std::size_t>(FlightPhase::kDecode)],
                  ms[static_cast<std::size_t>(FlightPhase::kOperate)], barrier,
                  ms[static_cast<std::size_t>(FlightPhase::kMerge)],
                  ms[static_cast<std::size_t>(FlightPhase::kCommit)], faults[r], retries[r],
                  rebalances[r], counts[r]);
    out += buf;
  }

  if (tail > 0 && !d.events.empty()) {
    const std::size_t n = std::min(tail, d.events.size());
    std::snprintf(buf, sizeof(buf), "-- last %zu events --\n", n);
    out += buf;
    std::snprintf(buf, sizeof(buf), "  %12s %-8s %-12s %-8s %10s  %s\n", "wall_us", "ring", "type",
                  "phase", "arg", "label");
    out += buf;
    for (std::size_t i = d.events.size() - n; i < d.events.size(); ++i) {
      const observe::FlightEvent& e = d.events[i];
      std::snprintf(buf, sizeof(buf), "  %12.3f %-8s %-12s %-8s %10" PRIu64 "  %s\n",
                    static_cast<double>(e.wall_ns) / 1e3, d.ring_name(e.ring).c_str(),
                    observe::flight_event_type_name(e.type), observe::flight_phase_name(e.phase),
                    e.arg, d.label_text(e.label).c_str());
      out += buf;
    }
  }
  return out;
}

std::string render_serve(const serve::LakeServer& server, const core::AllocationManager& quotas) {
  const serve::ServeStats s = server.stats();
  const std::uint64_t lookups = s.cache.hits + s.cache.misses;
  const double hit_rate =
      lookups ? 100.0 * static_cast<double>(s.cache.hits) / static_cast<double>(lookups) : 0.0;
  char buf[256];
  std::string out = "-- LAKE serving report --\n";
  std::snprintf(buf, sizeof(buf),
                "scheduler  depth %zu/%zu  admitted %" PRIu64 "  completed %" PRIu64
                "  shed %" PRIu64 "\n",
                s.queue_depth, server.config().max_queue, s.admitted, s.completed, s.shed);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "           queue_rejected %" PRIu64 "  quota_rejected %" PRIu64
                "  shed_slo %s\n",
                s.queue_rejected, s.quota_rejected, observe::slo_state_name(s.shed_state));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "cache      hits %" PRIu64 "  misses %" PRIu64 "  hit_rate %.1f%%  stale %" PRIu64
                "  evictions %" PRIu64 "\n",
                s.cache.hits, s.cache.misses, hit_rate, s.cache.stale_drops, s.cache.evictions);
  out += buf;
  std::snprintf(buf, sizeof(buf), "           entries %zu  bytes %zu\n", s.cache.entries,
                s.cache.bytes);
  out += buf;
  std::snprintf(buf, sizeof(buf), "plans      rollup_served %" PRIu64 "\n", s.rollup_served);
  out += buf;
  out += "projects\n";
  for (const auto& project : quotas.projects()) {
    const auto u = quotas.usage(project);
    const auto it = s.projects.find(project);
    const serve::ProjectServeStats ps = it == s.projects.end() ? serve::ProjectServeStats{}
                                                               : it->second;
    std::snprintf(buf, sizeof(buf),
                  "  %-10s admitted %-6" PRIu64 " quota_rejected %-6" PRIu64
                  " slots %.1f/%.1f\n",
                  project.c_str(), ps.admitted, ps.quota_rejected, u->used.service_slots,
                  u->granted.service_slots);
    out += buf;
  }
  return out;
}

std::string serve_report_json(const serve::LakeServer& server,
                              const core::AllocationManager& quotas) {
  const serve::ServeStats s = server.stats();
  std::string out = "{\"scheduler\":{";
  out += "\"depth\":" + std::to_string(s.queue_depth);
  out += ",\"max_queue\":" + std::to_string(server.config().max_queue);
  out += ",\"admitted\":" + std::to_string(s.admitted);
  out += ",\"completed\":" + std::to_string(s.completed);
  out += ",\"shed\":" + std::to_string(s.shed);
  out += ",\"queue_rejected\":" + std::to_string(s.queue_rejected);
  out += ",\"quota_rejected\":" + std::to_string(s.quota_rejected);
  out += ",\"shed_slo\":\"";
  out += observe::slo_state_name(s.shed_state);
  out += "\"},\"cache\":{";
  out += "\"hits\":" + std::to_string(s.cache.hits);
  out += ",\"misses\":" + std::to_string(s.cache.misses);
  out += ",\"stale_drops\":" + std::to_string(s.cache.stale_drops);
  out += ",\"evictions\":" + std::to_string(s.cache.evictions);
  out += ",\"inserts\":" + std::to_string(s.cache.inserts);
  out += ",\"entries\":" + std::to_string(s.cache.entries);
  out += ",\"bytes\":" + std::to_string(s.cache.bytes);
  out += "},\"plans\":{\"rollup_served\":" + std::to_string(s.rollup_served);
  out += "},\"projects\":[";
  bool first = true;
  for (const auto& project : quotas.projects()) {
    if (!first) out += ',';
    first = false;
    const auto u = quotas.usage(project);
    const auto it = s.projects.find(project);
    const serve::ProjectServeStats ps = it == s.projects.end() ? serve::ProjectServeStats{}
                                                               : it->second;
    char num[64];
    out += "{\"project\":\"" + observe::json_escape(project) + '"';
    out += ",\"admitted\":" + std::to_string(ps.admitted);
    out += ",\"quota_rejected\":" + std::to_string(ps.quota_rejected);
    std::snprintf(num, sizeof(num), "%.3f", u->used.service_slots);
    out += ",\"slots_used\":" + std::string(num);
    std::snprintf(num, sizeof(num), "%.3f", u->granted.service_slots);
    out += ",\"slots_granted\":" + std::string(num);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace oda::apps
