#include "apps/oda_monitor.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/stats.hpp"
#include "observe/export.hpp"

namespace oda::apps {

using observe::SloState;

OdaMonitor::OdaMonitor(stream::Broker& broker, storage::TierManager& tiers,
                       MonitorThresholds thresholds)
    : broker_(broker), tiers_(tiers), thresholds_(thresholds) {
  slos_.add({.name = "stream.lag",
             .subject = "fleet consumer lag vs broker offsets",
             .unit = "records",
             .warn = static_cast<double>(thresholds_.lag_warn),
             .crit = static_cast<double>(thresholds_.lag_crit),
             .breach_hold = thresholds_.breach_hold,
             .clear_after = thresholds_.clear_after});
  slos_.add({.name = "pipeline.freshness",
             .subject = "worst watermark delay across watched queries",
             .unit = "us",
             .warn = static_cast<double>(thresholds_.freshness_warn),
             .crit = static_cast<double>(thresholds_.freshness_crit),
             .breach_hold = thresholds_.breach_hold,
             .clear_after = thresholds_.clear_after});
  slos_.add({.name = "telemetry.drops",
             .subject = "collection records dropped after retries",
             .unit = "records",
             .warn = thresholds_.drop_warn,
             .crit = thresholds_.drop_crit,
             .breach_hold = 0,
             .clear_after = thresholds_.clear_after});
}

void OdaMonitor::watch_query(const pipeline::StreamingQuery& query) {
  watched_.push_back(&query);
}

void OdaMonitor::watch_query(const engine::Query& query) { watched_engine_.push_back(&query); }

void OdaMonitor::watch_engine(const engine::Engine& engine) { engines_.push_back(&engine); }

void OdaMonitor::tick(common::TimePoint now) {
  last_tick_ = now;

  // Consumer lag: walk the broker's committed-offset store against each
  // partition's end offset. Groups that never committed don't appear —
  // their lag is invisible to the broker too.
  for (const auto& row : broker_.committed_offsets()) {
    const stream::Topic* t = broker_.find_topic(row.tp.topic);
    if (t == nullptr || row.tp.partition >= t->num_partitions()) continue;
    lag_.observe_offsets(row.group, row.tp.topic, row.tp.partition,
                         t->partition(row.tp.partition).end_offset(), row.offset);
  }

  // Watermark freshness per watched query.
  for (const pipeline::StreamingQuery* q : watched_) {
    lag_.observe_watermark(q->name(), q->watermark(), now);
  }
  for (const engine::Query* q : watched_engine_) {
    lag_.observe_watermark(q->name(), q->watermark(), now);
  }

  // Tier backlogs from the tier manager's own report.
  for (const auto& r : tiers_.report()) {
    lag_.observe_backlog(storage::tier_name(r.tier), r.bytes, r.items);
  }

  // SLO evaluation.
  slos_.update("stream.lag", static_cast<double>(lag_.fleet_lag()), now);
  common::Duration worst_delay = 0;
  for (const auto& ws : lag_.watermarks()) worst_delay = std::max(worst_delay, ws.delay);
  if (!watched_.empty() || !watched_engine_.empty()) {
    slos_.update("pipeline.freshness", static_cast<double>(worst_delay), now);
  }
  const double drops = static_cast<double>(
      observe::default_registry().counter("telemetry.dropped.records")->value());
  slos_.update("telemetry.drops", drops, now);
}

std::string OdaMonitor::render() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "=== ODA self-observability monitor  [%s]  vt=%" PRId64 " ===\n",
                observe::slo_state_name(overall()), last_tick_);
  out += buf;
  out += observe::slos_to_text(slos_);

  const auto groups = lag_.group_lags();
  if (!groups.empty()) {
    out += "-- consumer lag --\n";
    for (const auto& g : groups) {
      std::snprintf(buf, sizeof(buf), "  %-20s %-24s lag=%" PRId64 " (peak %" PRId64 ", %zu parts)\n",
                    g.group.c_str(), g.topic.c_str(), g.total_lag, g.peak_lag,
                    g.partitions.size());
      out += buf;
    }
  }

  const auto wms = lag_.watermarks();
  if (!wms.empty()) {
    out += "-- watermarks --\n";
    for (const auto& w : wms) {
      if (w.ever_advanced) {
        std::snprintf(buf, sizeof(buf), "  %-28s wm=%" PRId64 " delay=%" PRId64 "us\n",
                      w.name.c_str(), w.watermark, w.delay);
      } else {
        std::snprintf(buf, sizeof(buf), "  %-28s (never advanced)\n", w.name.c_str());
      }
      out += buf;
    }
  }

  const auto backlogs = lag_.backlogs();
  if (!backlogs.empty()) {
    out += "-- tier backlogs --\n";
    for (const auto& b : backlogs) {
      std::snprintf(buf, sizeof(buf), "  %-10s %12s  %zu items\n", b.tier.c_str(),
                    common::format_bytes(b.bytes).c_str(), b.items);
      out += buf;
    }
  }

  if (!engines_.empty()) {
    out += "-- engines --\n";
    for (std::size_t i = 0; i < engines_.size(); ++i) {
      const engine::Engine* e = engines_[i];
      const engine::EngineStats s = e->stats();
      std::snprintf(buf, sizeof(buf),
                    "  engine%zu  workers=%zu queries=%zu rounds=%" PRIu64 " batches=%" PRIu64
                    " rows=%" PRIu64 " wall=%.3fs\n",
                    i, e->workers(), e->num_queries(), s.rounds, s.batches, s.rows,
                    s.wall_seconds);
      out += buf;
      // Ownership view: which worker owns how many partitions, how many
      // lane results it handed to the merge point, and whether it is
      // still alive (rebalances show up as owned moving between rows).
      for (const auto& [query, ws] : e->worker_info()) {
        std::snprintf(buf, sizeof(buf),
                      "    %-24s worker%zu %s owned=%zu rows=%" PRIu64 " handoffs=%" PRIu64 "\n",
                      query.c_str(), ws.worker, ws.alive ? "up  " : "dead", ws.owned_partitions,
                      ws.rows_fetched, ws.handoffs);
        out += buf;
      }
    }
  }
  return out;
}

std::string OdaMonitor::to_json() const {
  std::string out = "{\"overall\":\"";
  out += observe::slo_state_name(overall());
  out += "\",\"slos\":";
  out += observe::slos_to_json(slos_);
  // slos_to_json ends with "]\n" — trim the newline before continuing.
  if (!out.empty() && out.back() == '\n') out.pop_back();
  out += ",\"fleet_lag\":" + std::to_string(lag_.fleet_lag());
  out += ",\"groups\":[";
  bool first = true;
  for (const auto& g : lag_.group_lags()) {
    if (!first) out += ',';
    first = false;
    out += "{\"group\":\"" + observe::json_escape(g.group) + "\",\"topic\":\"" +
           observe::json_escape(g.topic) + "\",\"lag\":" + std::to_string(g.total_lag) +
           ",\"peak\":" + std::to_string(g.peak_lag) + '}';
  }
  out += "],\"engines\":[";
  first = true;
  for (const engine::Engine* e : engines_) {
    if (!first) out += ',';
    first = false;
    const engine::EngineStats s = e->stats();
    out += "{\"workers\":" + std::to_string(e->workers()) +
           ",\"queries\":" + std::to_string(e->num_queries()) +
           ",\"rounds\":" + std::to_string(s.rounds) +
           ",\"batches\":" + std::to_string(s.batches) + ",\"rows\":" + std::to_string(s.rows) +
           ",\"worker_info\":[";
    bool first_w = true;
    for (const auto& [query, ws] : e->worker_info()) {
      if (!first_w) out += ',';
      first_w = false;
      out += "{\"query\":\"" + observe::json_escape(query) +
             "\",\"worker\":" + std::to_string(ws.worker) +
             ",\"alive\":" + (ws.alive ? "true" : "false") +
             ",\"owned\":" + std::to_string(ws.owned_partitions) +
             ",\"rows\":" + std::to_string(ws.rows_fetched) +
             ",\"handoffs\":" + std::to_string(ws.handoffs) + '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string OdaMonitor::one_line() {
  return observe::one_line_summary(observe::default_registry().snapshot());
}

}  // namespace oda::apps
