// System-health dashboard for the System Management area (Table I row 1:
// "system performance, stability and reliability ensurance") — the
// at-a-glance fleet state a console operator watches: power envelope,
// thermal headroom, fabric congestion, filesystem pressure, node health,
// with threshold-based status rollups.
#pragma once

#include <string>
#include <vector>

#include "common/time.hpp"
#include "sql/table.hpp"
#include "storage/tsdb.hpp"

namespace oda::apps {

enum class HealthStatus { kOk, kWarning, kCritical };
const char* health_status_name(HealthStatus s);

struct HealthPanel {
  std::string name;
  HealthStatus status = HealthStatus::kOk;
  double value = 0.0;
  std::string unit;
  std::string detail;
};

struct HealthThresholds {
  double node_power_warn_w = 3500.0;
  double node_power_crit_w = 4500.0;
  double gpu_temp_warn_c = 75.0;
  double gpu_temp_crit_c = 88.0;
  double ost_latency_warn_ms = 20.0;
  double ost_latency_crit_ms = 60.0;
  double switch_stall_warn_pct = 30.0;
  double switch_stall_crit_pct = 70.0;
};

/// Computes the dashboard from LAKE metrics. Metrics are the standard
/// framework projections: node_power_w, gpu_temp_c (max projection),
/// plus optional ost_latency_ms / switch_stall_pct when those pipelines
/// are registered; absent metrics render as OK/no-data panels.
class HealthDashboard {
 public:
  HealthDashboard(const storage::TimeSeriesDb& lake, HealthThresholds thresholds = {});

  /// Evaluate all panels at the LAKE's current state.
  std::vector<HealthPanel> evaluate() const;

  /// Worst status across panels (the "top bar" light).
  HealthStatus overall() const;

  /// Render the dashboard as fixed-width text (console view).
  std::string render() const;

 private:
  HealthPanel metric_panel(const std::string& metric, const std::string& display,
                           const std::string& unit, double warn, double crit,
                           bool use_max) const;

  const storage::TimeSeriesDb& lake_;
  HealthThresholds thresholds_;
};

}  // namespace oda::apps
