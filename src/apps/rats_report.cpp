#include "apps/rats_report.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "sql/agg.hpp"
#include "sql/expr.hpp"
#include "sql/ops.hpp"

namespace oda::apps {

using sql::AggKind;
using sql::AggSpec;
using sql::DataType;
using sql::Table;
using sql::Value;

RatsReport::RatsReport(Table allocation_log) : log_(std::move(allocation_log)) {}

Table RatsReport::clipped_usage(common::TimePoint t0, common::TimePoint t1) const {
  Table out{sql::Schema{{"project", DataType::kString},
                        {"user", DataType::kString},
                        {"archetype", DataType::kString},
                        {"node_hours", DataType::kFloat64},
                        {"gpu_node_hours", DataType::kFloat64},
                        {"cpu_node_hours", DataType::kFloat64},
                        {"wait_s", DataType::kFloat64},
                        {"runtime_s", DataType::kFloat64}}};
  for (std::size_t r = 0; r < log_.num_rows(); ++r) {
    if (log_.column("start_time").is_null(r)) continue;  // never started
    const std::int64_t start = log_.column("start_time").int_at(r);
    const std::int64_t end = log_.column("end_time").int_at(r);
    const std::int64_t lo = std::max<std::int64_t>(start, t0);
    const std::int64_t hi = std::min<std::int64_t>(end, t1);
    if (hi <= lo) continue;
    const double hours = common::to_seconds(hi - lo) / 3600.0;
    const double nh = hours * static_cast<double>(log_.column("num_nodes").int_at(r));
    const bool gpu = log_.column("uses_gpu").bool_at(r);
    const double wait_s = common::to_seconds(start - log_.column("submit_time").int_at(r));
    out.append_row({log_.column("project").get(r), log_.column("user").get(r),
                    log_.column("archetype").get(r), Value(nh), Value(gpu ? nh : 0.0),
                    Value(gpu ? 0.0 : nh), Value(wait_s), Value(common::to_seconds(end - start))});
  }
  return out;
}

Table RatsReport::project_usage(common::TimePoint t0, common::TimePoint t1) const {
  const Table usage = clipped_usage(t0, t1);
  Table grouped = sql::group_by(usage, {"project"},
                                {AggSpec{"node_hours", AggKind::kCount, "jobs"},
                                 AggSpec{"node_hours", AggKind::kSum, "node_hours"},
                                 AggSpec{"gpu_node_hours", AggKind::kSum, "gpu_node_hours"},
                                 AggSpec{"cpu_node_hours", AggKind::kSum, "cpu_node_hours"}});
  return sql::sort_by(grouped, {{"node_hours", false}});
}

Table RatsReport::burn_rate(const std::map<std::string, double>& allocations,
                            common::TimePoint now) const {
  const Table usage = project_usage(0, now);
  Table out{sql::Schema{{"project", DataType::kString},
                        {"allocation_nh", DataType::kFloat64},
                        {"used_nh", DataType::kFloat64},
                        {"burn_pct", DataType::kFloat64},
                        {"projected_exhaustion_day", DataType::kFloat64}}};
  const double elapsed_days = std::max(1e-9, common::to_seconds(now) / 86400.0);
  for (const auto& [project, granted] : allocations) {
    double used = 0.0;
    for (std::size_t r = 0; r < usage.num_rows(); ++r) {
      if (usage.column("project").str_at(r) == project) {
        used = usage.column("node_hours").double_at(r);
        break;
      }
    }
    const double burn_pct = granted > 0 ? 100.0 * used / granted : 0.0;
    const double rate_per_day = used / elapsed_days;
    const double days_to_exhaust = rate_per_day > 1e-9 ? granted / rate_per_day : 1e9;
    out.append_row({Value(project), Value(granted), Value(used), Value(burn_pct),
                    Value(days_to_exhaust)});
  }
  return sql::sort_by(out, {{"burn_pct", false}});
}

Table RatsReport::user_activity() const {
  const Table usage = clipped_usage(0, INT64_MAX);
  Table grouped = sql::group_by(usage, {"user"},
                                {AggSpec{"node_hours", AggKind::kCount, "jobs"},
                                 AggSpec{"node_hours", AggKind::kSum, "node_hours"}});
  return sql::sort_by(grouped, {{"node_hours", false}});
}

Table RatsReport::project_energy(const storage::TimeSeriesDb& lake, const Table& node_allocations,
                                 const std::string& metric) const {
  // job -> project from the allocation log.
  std::map<std::int64_t, std::string> job_project;
  for (std::size_t r = 0; r < log_.num_rows(); ++r) {
    job_project[log_.column("job_id").int_at(r)] = log_.column("project").str_at(r);
  }

  struct Acc {
    double joules = 0.0;
    double watt_seconds_count = 0.0;  ///< total integration time
    std::set<std::int64_t> jobs;
  };
  std::map<std::string, Acc> by_project;

  for (std::size_t r = 0; r < node_allocations.num_rows(); ++r) {
    const std::int64_t job_id = node_allocations.column("job_id").int_at(r);
    const auto project_it = job_project.find(job_id);
    if (project_it == job_project.end()) continue;
    storage::TsQuery q;
    q.metric = metric;
    q.tag_filter = {{"node_id",
                     std::to_string(node_allocations.column("node_id").int_at(r))}};
    q.t0 = node_allocations.column("start_time").int_at(r);
    q.t1 = node_allocations.column("end_time").int_at(r);
    const Table series = lake.query(q);
    if (series.num_rows() == 0) continue;

    Acc& acc = by_project[project_it->second];
    acc.jobs.insert(job_id);
    // Trapezoid-free integration: each sample holds until the next one.
    for (std::size_t i = 0; i + 1 < series.num_rows(); ++i) {
      const double dt_s = common::to_seconds(series.column("time").int_at(i + 1) -
                                             series.column("time").int_at(i));
      acc.joules += series.column("value").double_at(i) * dt_s;
      acc.watt_seconds_count += dt_s;
    }
  }

  Table out{sql::Schema{{"project", DataType::kString},
                        {"jobs", DataType::kInt64},
                        {"energy_kwh", DataType::kFloat64},
                        {"mean_power_w", DataType::kFloat64}}};
  for (const auto& [project, acc] : by_project) {
    out.append_row({Value(project), Value(static_cast<std::int64_t>(acc.jobs.size())),
                    Value(acc.joules / 3.6e6),
                    Value(acc.watt_seconds_count > 0 ? acc.joules / acc.watt_seconds_count : 0.0)});
  }
  return sql::sort_by(out, {{"energy_kwh", false}});
}

Table RatsReport::queue_stats() const {
  const Table usage = clipped_usage(0, INT64_MAX);
  Table grouped = sql::group_by(usage, {"archetype"},
                                {AggSpec{"wait_s", AggKind::kCount, "jobs"},
                                 AggSpec{"wait_s", AggKind::kMean, "mean_wait_s"},
                                 AggSpec{"runtime_s", AggKind::kMean, "mean_runtime_s"}});
  return sql::sort_by(grouped, {{"jobs", false}});
}

}  // namespace oda::apps
