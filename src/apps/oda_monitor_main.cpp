// oda_monitor — the self-observability health app as an executable.
//
// Runs a small instrumented facility simulation (collection → broker →
// Bronze→Silver refinement → LAKE) with tracing enabled, then reports the
// framework's own health: SLO states, consumer lag, watermark freshness,
// tier backlogs, and the trace anatomy of the run.
//
//   oda_monitor              full console report
//   oda_monitor --one-line   single-line metrics digest (build-log hook)
//   oda_monitor --json       machine-readable report
//   oda_monitor --spans      include the span forest (trace anatomy)
#include <cstring>
#include <iostream>
#include <string>

#include "apps/oda_monitor.hpp"
#include "core/framework.hpp"
#include "engine/engine.hpp"
#include "observe/export.hpp"
#include "observe/trace.hpp"
#include "telemetry/codec.hpp"

int main(int argc, char** argv) {
  bool one_line = false;
  bool json = false;
  bool spans = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--one-line") == 0) one_line = true;
    else if (std::strcmp(argv[i], "--json") == 0) json = true;
    else if (std::strcmp(argv[i], "--spans") == 0) spans = true;
    else {
      std::cerr << "usage: oda_monitor [--one-line] [--json] [--spans]\n";
      return 2;
    }
  }

  oda::observe::Tracer tracer;
  oda::observe::ScopedTracer scoped(tracer);

  oda::core::OdaFramework fw;
  auto& sys = fw.add_system(oda::telemetry::compass_spec(0.004));
  auto& silver = fw.register_query(fw.make_bronze_to_silver_power(sys.spec().name));
  auto& to_lake = fw.register_query(
      fw.make_silver_to_lake(sys.spec().name, "node.power_w", "node_power_w"));

  oda::apps::OdaMonitor monitor(fw.broker(), fw.tiers());
  monitor.watch_query(silver);
  monitor.watch_query(to_lake);

  fw.advance(2 * oda::common::kMinute);

  // Partition-parallel path: an engine-driven query re-reads the Bronze
  // power stream into memory through a 2-worker consumer group, so the
  // report also covers the engine's scheduling totals.
  const auto topics = oda::telemetry::TopicNames::for_system(sys.spec().name);
  oda::engine::Engine engine(oda::engine::EngineConfig{}.with_workers(2));
  auto& mirror = engine.add_query(
      oda::pipeline::QueryConfig{}.with_name("engine.bronze.mirror"),
      engine.make_source(fw.broker(), topics.power, "monitor.engine",
                         oda::telemetry::packets_to_bronze));
  mirror.add_sink(std::make_unique<oda::pipeline::TableSink>());
  engine.run_until_caught_up();
  monitor.watch_query(mirror);
  monitor.watch_engine(engine);

  monitor.tick(fw.now());

  if (one_line) {
    std::cout << oda::apps::OdaMonitor::one_line() << "\n";
    return 0;
  }
  if (json) {
    std::cout << monitor.to_json() << "\n";
    return 0;
  }
  std::cout << monitor.render();
  std::cout << oda::apps::OdaMonitor::one_line() << "\n";
  if (spans) {
    std::cout << "\n-- trace anatomy (last " << tracer.store().size() << " spans) --\n";
    std::cout << oda::observe::spans_to_text(tracer.store().snapshot());
  }
  return monitor.overall() == oda::observe::SloState::kBreached ? 1 : 0;
}
