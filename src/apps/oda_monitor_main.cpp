// oda_monitor — the self-observability health app as an executable.
//
// Runs a small instrumented facility simulation (collection → broker →
// Bronze→Silver refinement → LAKE) with tracing and the self-telemetry
// loop enabled, then reports the framework's own health: SLO states,
// consumer lag, watermark freshness, tier backlogs, retained metric
// history, and the trace anatomy of the run.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "apps/oda_monitor.hpp"
#include "core/framework.hpp"
#include "engine/engine.hpp"
#include "observe/export.hpp"
#include "observe/trace.hpp"
#include "telemetry/codec.hpp"

namespace {

constexpr const char* kUsage = R"(usage: oda_monitor [options]

Self-observability health app: runs an instrumented demo facility
(collection -> broker -> Bronze->Silver -> LAKE, plus a 2-worker engine
mirror) with tracing and the self-telemetry loop on, then reports the
framework's own health.

options:
  --help                 print this usage to stdout and exit 0
  --one-line             single-line metrics digest (build-log hook)
  --json                 machine-readable report
  --spans                include the span forest (trace anatomy)
  --watch [N]            periodic mode: N frames (default 4) of 30s of
                         facility time each, redrawing SLO state and
                         HistoryStore sparklines per frame
  --history <prefix>     tabular range dump (raw + 1m rollups) of every
                         retained series whose name starts with <prefix>
  --chrome-trace <file>  write the run's spans as Chrome trace-event JSON
                         (load in chrome://tracing or Perfetto)
  --flight <dump.json>   standalone viewer: render a flight dump written
                         by --flight-dump (or Engine::dump_flight) as a
                         per-worker phase timeline; with --json, re-emit
                         the parsed dump as normalized JSON
  --flight-dump <file>   run the demo with a chaos fault injected into
                         the engine mirror, then write the engine's
                         flight recorder as JSON to <file>
  --serve                LAKE serving demo: a multi-tenant LakeServer
                         over a synthetic LAKE + rollup rings, driven by
                         three projects (generous, mixed-priority, and
                         over-quota), then the serving report: scheduler
                         depth, per-project quota consumption, cache
                         hit/miss/evict counters, shed counts; with
                         --json, the machine-readable flavor

exit status: 0 healthy/degraded, 1 breached, 2 bad usage.
)";

// The --serve demo: deterministic single-process serving traffic that
// exercises every admission outcome. Three tenants: "dash" (interactive,
// hot repeated queries — the cache story), "batch" (half background — the
// shedding story under a Degraded depth SLO), "greedy" (granted less
// than one query's cost — the quota story).
int run_serve_demo(bool json) {
  oda::storage::TimeSeriesDb db;
  oda::observe::HistoryStore rollups;
  for (int n = 0; n < 8; ++n) {
    const oda::storage::SeriesKey key{"node_power_w", {{"node", "n" + std::to_string(n)}}};
    const std::string ring = oda::serve::history_series_name(key);
    for (int i = 0; i < 480; ++i) {  // 2h of 15s cadence
      const auto t = static_cast<oda::common::TimePoint>(i) * 15 * oda::common::kSecond;
      const double v = 95.0 + n + (i % 13);
      db.append(key, t, v);
      rollups.append(ring, t, v);
    }
  }

  oda::core::AllocationManager quotas;
  quotas.grant("dash", {.node_hours = 0, .storage_gb = 0, .service_slots = 8.0});
  quotas.grant("batch", {.node_hours = 0, .storage_gb = 0, .service_slots = 4.0});
  quotas.grant("greedy", {.node_hours = 0, .storage_gb = 0, .service_slots = 0.5});

  oda::observe::set_virtual_now(0);
  // warn 0.5 < depth 1: every query runs Degraded, so background traffic
  // sheds deterministically while interactive traffic still serves.
  oda::serve::LakeServer server(db,
                                oda::serve::ServeConfig{}
                                    .with_threads(2)
                                    .with_max_queue(8)
                                    .with_shed_depths(0.5, 1e9)
                                    .with_cache_bytes(1u << 20),
                                &rollups, &quotas);

  // dash: 10 distinct dashboard panels refreshed 20 times — raw scans
  // and 1m/10m rollup-plan queries, mostly cache hits after warmup.
  for (int round = 0; round < 20; ++round) {
    for (int panel = 0; panel < 10; ++panel) {
      oda::storage::TsQuery q;
      q.metric = "node_power_w";
      if (panel % 2) q.tag_filter = {{"node", "n" + std::to_string(panel % 8)}};
      q.t0 = 0;
      q.t1 = 2 * oda::common::kHour;
      q.step = (panel % 3 == 0) ? oda::common::kMinute
               : (panel % 3 == 1) ? 10 * oda::common::kMinute
                                  : 0;
      server.execute("dash", q);
    }
  }
  // batch: half interactive (served), half background (shed while Degraded).
  for (int i = 0; i < 50; ++i) {
    oda::storage::TsQuery q;
    q.metric = "node_power_w";
    q.t0 = 0;
    q.t1 = oda::common::kHour;
    q.step = oda::common::kMinute;
    server.execute("batch", q,
                   (i % 2) ? oda::serve::QueryPriority::kBackground
                           : oda::serve::QueryPriority::kInteractive);
  }
  // greedy: each query costs 1.0 slot against a 0.5-slot grant.
  for (int i = 0; i < 20; ++i) {
    oda::storage::TsQuery q;
    q.metric = "node_power_w";
    server.execute("greedy", q);
  }

  if (json) {
    std::cout << oda::apps::serve_report_json(server, quotas) << "\n";
  } else {
    std::cout << oda::apps::render_serve(server, quotas);
  }
  return 0;
}

// Merged p-th quantile of every stream.e2e_latency series in the
// process registry (one label set per query; summing per-bucket counts
// merges them into one distribution).
double e2e_quantile(double q) {
  std::vector<std::pair<double, std::uint64_t>> merged;
  std::uint64_t total = 0;
  for (const auto& m : oda::observe::default_registry().snapshot()) {
    if (m.name != "stream.e2e_latency" || m.kind != oda::observe::MetricKind::kHistogram) continue;
    if (merged.empty()) {
      merged = m.buckets;
    } else {
      for (std::size_t i = 0; i < merged.size() && i < m.buckets.size(); ++i) {
        merged[i].second += m.buckets[i].second;
      }
    }
    total += m.count;
  }
  if (total == 0) return 0.0;
  return oda::observe::quantile_from_buckets(merged, total, q);
}

void print_frame(const oda::apps::OdaMonitor& monitor, const oda::core::OdaFramework& fw,
                 const oda::observe::HistoryStore& history, int frame,
                 const std::vector<double>& e2e_p50, const std::vector<double>& e2e_p99) {
  std::printf("-- watch frame %d  t=%s  overall=%s --\n", frame,
              oda::common::format_duration(fw.now()).c_str(),
              oda::observe::slo_state_name(monitor.overall()));
  std::fputs(oda::observe::history_overview(history).c_str(), stdout);
  if (!e2e_p50.empty()) {
    std::printf("  %-28s %12.6f %s\n", "stream.e2e_latency.p50", e2e_p50.back(),
                oda::observe::sparkline(e2e_p50).c_str());
    std::printf("  %-28s %12.6f %s\n", "stream.e2e_latency.p99", e2e_p99.back(),
                oda::observe::sparkline(e2e_p99).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool one_line = false;
  bool json = false;
  bool spans = false;
  bool watch = false;
  int watch_frames = 4;
  std::string history_prefix;
  bool history_mode = false;
  std::string chrome_path;
  std::string flight_path;
  std::string flight_dump_path;
  bool serve_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << kUsage;
      return 0;
    } else if (std::strcmp(argv[i], "--one-line") == 0) {
      one_line = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--spans") == 0) {
      spans = true;
    } else if (std::strcmp(argv[i], "--watch") == 0) {
      watch = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') watch_frames = std::atoi(argv[++i]);
      if (watch_frames <= 0) watch_frames = 4;
    } else if (std::strcmp(argv[i], "--history") == 0 && i + 1 < argc) {
      history_mode = true;
      history_prefix = argv[++i];
    } else if (std::strcmp(argv[i], "--chrome-trace") == 0 && i + 1 < argc) {
      chrome_path = argv[++i];
    } else if (std::strcmp(argv[i], "--flight") == 0 && i + 1 < argc) {
      flight_path = argv[++i];
    } else if (std::strcmp(argv[i], "--flight-dump") == 0 && i + 1 < argc) {
      flight_dump_path = argv[++i];
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      serve_mode = true;
    } else {
      std::cerr << kUsage;
      return 2;
    }
  }

  // Standalone serving demo: no facility simulation, just the LakeServer
  // front-end over a synthetic LAKE (the read-side mirror of the demo).
  if (serve_mode) return run_serve_demo(json);

  // Standalone flight viewer: no demo run, just parse and render the
  // dump (the post-mortem half of the flight-recorder loop).
  if (!flight_path.empty()) {
    std::ifstream f(flight_path, std::ios::binary);
    if (!f) {
      std::cerr << "oda_monitor: cannot read " << flight_path << "\n";
      return 2;
    }
    std::string text((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
    try {
      const oda::observe::FlightDump dump = oda::apps::parse_flight_json(text);
      if (json) {
        std::cout << oda::observe::flight_to_json(dump);
      } else {
        std::cout << oda::apps::render_flight(dump);
      }
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
      return 2;
    }
    return 0;
  }

  oda::observe::Tracer tracer;
  oda::observe::ScopedTracer scoped(tracer);

  oda::core::OdaFramework fw;
  auto& sys = fw.add_system(oda::telemetry::compass_spec(0.004));
  auto& silver = fw.register_query(fw.make_bronze_to_silver_power(sys.spec().name));
  auto& to_lake = fw.register_query(
      fw.make_silver_to_lake(sys.spec().name, "node.power_w", "node_power_w"));
  fw.enable_self_telemetry();

  oda::apps::OdaMonitor monitor(fw.broker(), fw.tiers());
  monitor.watch_query(silver);
  monitor.watch_query(to_lake);
  // SLO transitions ride the loop too: each scrape forwards new ones to
  // the reserved _oda.alerts topic.
  fw.scraper()->watch_slos(monitor.slos());

  std::vector<double> e2e_p50;
  std::vector<double> e2e_p99;
  if (watch) {
    for (int frame = 1; frame <= watch_frames; ++frame) {
      fw.advance(30 * oda::common::kSecond);
      monitor.tick(fw.now());
      fw.flush_self_telemetry();
      e2e_p50.push_back(e2e_quantile(0.5));
      e2e_p99.push_back(e2e_quantile(0.99));
      print_frame(monitor, fw, *fw.history(), frame, e2e_p50, e2e_p99);
    }
  } else {
    fw.advance(2 * oda::common::kMinute);
  }

  // Partition-parallel path: an engine-driven query re-reads the Bronze
  // power stream into memory through a 2-worker consumer group, so the
  // report also covers the engine's scheduling totals.
  const auto topics = oda::telemetry::TopicNames::for_system(sys.spec().name);
  oda::engine::Engine engine(oda::engine::EngineConfig{}.with_workers(2));
  auto& mirror = engine.add_query(
      oda::pipeline::QueryConfig{}.with_name("engine.bronze.mirror"),
      oda::engine::SourceSpec{&fw.broker(), topics.power, "monitor.engine",
                              oda::telemetry::packets_to_bronze});
  mirror.add_sink(std::make_unique<oda::pipeline::TableSink>());
  // A flight dump of a clean run is a boring flight dump: when one was
  // asked for, fail the first generation so the timeline shows the fault
  // instant, the rollback, and the byte-identical replay.
  if (!flight_dump_path.empty()) {
    mirror.set_fault_plan(oda::pipeline::FaultPlan{.fail_on_batch = 0});
  }
  engine.run_until_caught_up();
  monitor.watch_query(mirror);
  monitor.watch_engine(engine);

  monitor.tick(fw.now());
  // Final flush picks up the engine counters and any SLO transitions the
  // last tick produced.
  fw.flush_self_telemetry();

  if (!flight_dump_path.empty()) {
    const std::string dump_json = oda::observe::flight_to_json(engine.dump_flight());
    std::ofstream f(flight_dump_path, std::ios::binary);
    if (!f) {
      std::cerr << "oda_monitor: cannot write " << flight_dump_path << "\n";
      return 2;
    }
    f << dump_json;
    f.close();
    std::printf("wrote flight dump (%zu bytes) to %s\n", dump_json.size(),
                flight_dump_path.c_str());
    if (!history_mode && !one_line && !json && chrome_path.empty()) return 0;
  }

  if (!chrome_path.empty()) {
    const std::string trace = oda::observe::spans_to_chrome_json(tracer.store().snapshot());
    std::ofstream f(chrome_path, std::ios::binary);
    if (!f) {
      std::cerr << "oda_monitor: cannot write " << chrome_path << "\n";
      return 2;
    }
    f << trace;
    f.close();
    std::printf("wrote %zu spans (%zu bytes) to %s\n", tracer.store().size(), trace.size(),
                chrome_path.c_str());
    if (!history_mode && !one_line && !json) return 0;
  }

  if (history_mode) {
    const auto& history = *fw.history();
    std::size_t matched = 0;
    for (const auto& series : history.series_names()) {
      if (series.rfind(history_prefix, 0) != 0) continue;
      ++matched;
      std::cout << oda::observe::history_to_text(history, series, INT64_MIN, INT64_MAX,
                                                 oda::observe::Resolution::kRaw);
      std::cout << oda::observe::history_to_text(history, series, INT64_MIN, INT64_MAX,
                                                 oda::observe::Resolution::kOneMinute);
    }
    if (matched == 0) {
      std::cerr << "oda_monitor: no retained series matches '" << history_prefix << "'\n";
      return 1;
    }
    return 0;
  }

  if (one_line) {
    std::cout << oda::apps::OdaMonitor::one_line() << "\n";
    return 0;
  }
  if (json) {
    std::cout << monitor.to_json() << "\n";
    return 0;
  }
  if (!watch) {
    std::cout << monitor.render();
  }
  std::cout << oda::apps::OdaMonitor::one_line() << "\n";
  if (spans) {
    std::cout << "\n-- trace anatomy (last " << tracer.store().size() << " spans) --\n";
    std::cout << oda::observe::spans_to_text(tracer.store().snapshot());
  }
  return monitor.overall() == oda::observe::SloState::kBreached ? 1 : 0;
}
