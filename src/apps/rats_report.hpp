// RATS-Report (Fig 7): the central usage-reporting service — node-hours
// by project/program, CPU vs GPU split, allocation burn rates, and user
// activity, computed from the resource-manager dataset.
#pragma once

#include <map>
#include <string>

#include "common/time.hpp"
#include "sql/table.hpp"
#include "storage/tsdb.hpp"

namespace oda::apps {

class RatsReport {
 public:
  /// `allocation_log`: JobScheduler::allocation_log() schema.
  explicit RatsReport(sql::Table allocation_log);

  /// Per-project usage over [t0, t1): (project, jobs, node_hours,
  /// gpu_node_hours, cpu_node_hours) sorted by node_hours desc — the
  /// Fig 7 "project usage (CPU vs GPU) across an allocation program".
  sql::Table project_usage(common::TimePoint t0, common::TimePoint t1) const;

  /// Burn-rate rows: (project, allocation_nh, used_nh, burn_pct,
  /// projected_exhaustion_day). `allocations` maps project -> granted
  /// node-hours; `now` bounds accrual.
  sql::Table burn_rate(const std::map<std::string, double>& allocations, common::TimePoint now) const;

  /// (user, jobs, node_hours) activity rollup.
  sql::Table user_activity() const;

  /// Queue statistics: (archetype, jobs, mean_wait_s, mean_runtime_s).
  sql::Table queue_stats() const;

  /// Per-project measured energy (energy-efficiency thrust, Table I):
  /// integrates the LAKE power series over each job's node allocations.
  /// `node_allocations`: (job_id, node_id, start_time, end_time) rows.
  /// Output: (project, jobs, energy_kwh, mean_power_w) sorted by energy.
  sql::Table project_energy(const storage::TimeSeriesDb& lake, const sql::Table& node_allocations,
                            const std::string& metric = "node_power_w") const;

 private:
  /// Clip a job's node-hours to [t0, t1).
  sql::Table clipped_usage(common::TimePoint t0, common::TimePoint t1) const;

  sql::Table log_;
};

}  // namespace oda::apps
