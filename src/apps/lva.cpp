#include "apps/lva.hpp"

#include "sql/agg.hpp"
#include "sql/expr.hpp"
#include "sql/ops.hpp"
#include "storage/columnar.hpp"

namespace oda::apps {

using sql::AggKind;
using sql::AggSpec;
using sql::Table;
using sql::Value;

Lva::Lva(const storage::ObjectStore& ocean, std::string silver_dataset, std::string bronze_dataset)
    : ocean_(ocean), silver_dataset_(std::move(silver_dataset)), bronze_dataset_(std::move(bronze_dataset)) {}

LvaResult Lva::query_silver(const LvaQuery& q) const {
  LvaResult res;
  std::vector<Table> parts;
  for (const auto& meta : ocean_.list(silver_dataset_)) {
    auto blob = ocean_.get(meta.key);
    if (!blob) continue;
    storage::ReadOptions opts;
    opts.columns = {"window_start", "sensor", "mean_value"};
    opts.filter = storage::RowGroupFilter{"window_start", q.t0, q.t1 - 1};
    Table t = storage::read_columnar(*blob, opts);
    res.bytes_scanned += blob->size();
    if (t.num_rows() == 0) {
      ++res.objects_skipped;
      continue;
    }
    ++res.objects_read;
    parts.push_back(std::move(t));
  }
  if (parts.empty()) return res;
  Table all = sql::concat(parts);
  all = sql::filter(all, sql::col("window_start") >= sql::lit(Value(q.t0)) &&
                             sql::col("window_start") < sql::lit(Value(q.t1)) &&
                             sql::col("sensor") == sql::lit(Value("node.power_w")));
  const std::vector<std::string> no_keys;
  const std::vector<AggSpec> aggs{{"mean_value", AggKind::kMean, "mean_power_w"},
                                  {"mean_value", AggKind::kMax, "max_power_w"}};
  res.series = sql::sort_by(
      sql::window_aggregate(all, "window_start", q.bucket, no_keys, aggs, "bucket"),
      {{"bucket", true}});
  return res;
}

LvaResult Lva::query_bronze(const LvaQuery& q) const {
  LvaResult res;
  std::vector<Table> parts;
  for (const auto& meta : ocean_.list(bronze_dataset_)) {
    auto blob = ocean_.get(meta.key);
    if (!blob) continue;
    res.bytes_scanned += blob->size();
    // No projection, no pushdown: the raw path decodes everything.
    Table t = storage::read_columnar(*blob);
    ++res.objects_read;
    parts.push_back(std::move(t));
  }
  if (parts.empty()) return res;
  Table all = sql::concat(parts);
  all = sql::filter(all, sql::col("time") >= sql::lit(Value(q.t0)) &&
                             sql::col("time") < sql::lit(Value(q.t1)) &&
                             sql::col("sensor") == sql::lit(Value("node.power_w")));
  const std::vector<std::string> no_keys;
  const std::vector<AggSpec> aggs{{"value", AggKind::kMean, "mean_power_w"},
                                  {"value", AggKind::kMax, "max_power_w"}};
  res.series =
      sql::sort_by(sql::window_aggregate(all, "time", q.bucket, no_keys, aggs, "bucket"),
                   {{"bucket", true}});
  return res;
}

}  // namespace oda::apps
