// Live Visual Analytics (Fig 8): near-real-time, low-latency interactive
// queries over years of power/thermal profile data. The enabling trick
// per the paper: "a specialized data refinement pipeline that delivers
// contextualized job power profiles, which vastly reduces the amount of
// processing required in interactive queries".
//
// Two query paths expose exactly that trade:
//   - query_silver(): reads precomputed Silver aggregates from OCEAN with
//     column projection + row-group timestamp pushdown (interactive).
//   - query_bronze(): scans raw Bronze observations and aggregates on
//     the fly (what the UI would have to do without the pipeline).
#pragma once

#include <string>

#include "common/time.hpp"
#include "sql/table.hpp"
#include "storage/object_store.hpp"

namespace oda::apps {

struct LvaQuery {
  common::TimePoint t0 = 0;
  common::TimePoint t1 = INT64_MAX;
  common::Duration bucket = 15 * common::kMinute;  ///< UI zoom level
};

struct LvaResult {
  sql::Table series;          ///< (bucket, mean/max power)
  std::size_t objects_read = 0;
  std::size_t objects_skipped = 0;  ///< pruned by row-group stats
  std::size_t bytes_scanned = 0;
};

class Lva {
 public:
  Lva(const storage::ObjectStore& ocean, std::string silver_dataset, std::string bronze_dataset);

  /// Interactive path over Silver (expects columns window_start /
  /// mean_value aggregated per node per window).
  LvaResult query_silver(const LvaQuery& q) const;

  /// Raw path over Bronze (time, node_id, sensor, value).
  LvaResult query_bronze(const LvaQuery& q) const;

 private:
  const storage::ObjectStore& ocean_;
  std::string silver_dataset_;
  std::string bronze_dataset_;
};

}  // namespace oda::apps
