#include "twin/allocator.hpp"

#include <algorithm>

namespace oda::twin {

using common::Duration;
using common::TimePoint;
using telemetry::Job;
using telemetry::JobScheduler;
using telemetry::SystemSpec;

ResourceAllocatorSim::ResourceAllocatorSim(SystemSpec spec, AllocatorSimConfig config)
    : spec_(std::move(spec)), config_(config) {}

double ResourceAllocatorSim::node_power_w(const SystemSpec& spec, double cpu_util, double gpu_util) {
  double p = spec.node_overhead_w;
  for (const auto& c : spec.components) {
    double util = 0.0;
    switch (c.kind) {
      case telemetry::ComponentKind::kCpu: util = cpu_util; break;
      case telemetry::ComponentKind::kGpu: util = gpu_util; break;
      case telemetry::ComponentKind::kMemory: util = 0.5 * std::max(cpu_util, gpu_util) + 0.05; break;
      case telemetry::ComponentKind::kNic: util = 0.3 * std::max(cpu_util, gpu_util); break;
      case telemetry::ComponentKind::kNode: break;
    }
    p += static_cast<double>(c.count) * (c.idle_w + util * (c.peak_w - c.idle_w));
  }
  return p;
}

WorkloadResult ResourceAllocatorSim::simulate(Duration span) {
  WorkloadResult result;
  common::Rng rng(config_.seed);
  JobScheduler sched(spec_.total_nodes(), config_.scheduler, rng);

  const double idle_node_w = node_power_w(spec_, 0.03, 0.01);
  double util_acc = 0.0;
  std::size_t steps = 0;
  double energy_j = 0.0;

  for (TimePoint t = 0; t <= span; t += config_.step) {
    sched.advance_to(t);

    double power = 0.0;
    std::size_t busy = 0;
    for (const auto& job : sched.jobs()) {
      if (job.start_time == 0 || job.end_time <= 0 || !job.running_at(t)) continue;
      common::Rng job_rng(static_cast<std::uint64_t>(job.job_id));
      const double raw_u =
          job.base_util * telemetry::archetype_utilization(job.archetype, job.phase_at(t), job_rng);
      const double u = std::min(raw_u, config_.power_cap_util);
      const double cpu_u = job.uses_gpu ? 0.35 * u + 0.1 : u;
      const double gpu_u = job.uses_gpu ? u : 0.0;
      power += static_cast<double>(job.num_nodes) * node_power_w(spec_, cpu_u, gpu_u);
      busy += job.num_nodes;
    }
    const std::size_t idle_nodes = spec_.total_nodes() - std::min(busy, spec_.total_nodes());
    power += static_cast<double>(idle_nodes) * idle_node_w;

    result.power_trace.push_back({t, power});
    util_acc += static_cast<double>(busy) / static_cast<double>(spec_.total_nodes());
    energy_j += power * common::to_seconds(config_.step);
    ++steps;
  }

  result.mean_node_utilization = steps ? util_acc / static_cast<double>(steps) : 0.0;
  result.total_energy_mwh = energy_j / 3.6e9;
  for (const auto& job : sched.jobs()) {
    if (job.start_time > 0 && job.end_time > 0 && job.end_time <= span) {
      ++result.jobs_completed;
      result.node_hours_delivered += static_cast<double>(job.num_nodes) *
                                     common::to_seconds(job.end_time - job.start_time) / 3600.0;
    }
  }
  return result;
}

}  // namespace oda::twin
