#include "twin/losses.hpp"

#include <algorithm>
#include <cmath>

namespace oda::twin {

double PowerLossModel::rectifier_efficiency(double load_fraction) const {
  const double x = std::clamp(load_fraction, 0.01, 1.2);
  // Smooth curve: low at light load, peak near 50%, slight sag at 100%.
  const double rise = 1.0 - std::exp(-x / 0.08);
  const double sag = 1.0 - 0.03 * std::max(0.0, x - 0.5);
  const double eff = config_.rectifier_low_eff +
                     (config_.rectifier_peak_eff - config_.rectifier_low_eff) * rise * sag;
  return std::clamp(eff, 0.5, 0.995);
}

double PowerLossModel::conversion_efficiency(double load_fraction) const {
  const double x = std::clamp(load_fraction, 0.01, 1.2);
  // Mild load dependence around the nominal DC-DC efficiency.
  return std::clamp(config_.conversion_eff - 0.01 * std::abs(x - 0.6), 0.80, 0.995);
}

PowerBreakdown PowerLossModel::compute(double it_power_w) const {
  PowerBreakdown b;
  b.it_power_w = it_power_w;
  const double load = it_power_w / config_.rated_power_w;
  const double conv_eff = conversion_efficiency(load);
  const double dc_power = it_power_w / conv_eff;
  b.conversion_loss_w = dc_power - it_power_w;
  const double rect_eff = rectifier_efficiency(load);
  b.total_input_w = dc_power / rect_eff;
  b.rectifier_loss_w = b.total_input_w - dc_power;
  return b;
}

}  // namespace oda::twin
