// Electrical loss models of the digital twin (Fig 11 right): rectifier
// (AC→DC) and DC voltage-conversion losses as load-dependent efficiency
// curves, "predicting energy losses due to rectification and voltage
// conversion" white-box style.
#pragma once

namespace oda::twin {

struct PowerBreakdown {
  double it_power_w = 0.0;          ///< useful power delivered to components
  double conversion_loss_w = 0.0;   ///< DC-DC (54V->12V, VRs)
  double rectifier_loss_w = 0.0;    ///< AC->DC rectification
  double total_input_w = 0.0;       ///< facility draw = IT + losses

  double loss_fraction() const {
    return total_input_w > 0.0 ? (conversion_loss_w + rectifier_loss_w) / total_input_w : 0.0;
  }
};

struct LossModelConfig {
  double rated_power_w = 30e6;       ///< rectifier plant rating
  double rectifier_peak_eff = 0.975; ///< at ~50% load
  double rectifier_low_eff = 0.90;   ///< at light load
  double conversion_eff = 0.965;     ///< DC-DC stage, mildly load-dependent
};

class PowerLossModel {
 public:
  explicit PowerLossModel(LossModelConfig config = {}) : config_(config) {}

  /// Load-dependent rectifier efficiency: rises steeply from light load,
  /// peaks mid-band, sags slightly at full load (typical rectifier curve).
  double rectifier_efficiency(double load_fraction) const;
  double conversion_efficiency(double load_fraction) const;

  /// Invert the chain: given IT (component) power, compute facility input.
  PowerBreakdown compute(double it_power_w) const;

  const LossModelConfig& config() const { return config_; }

 private:
  LossModelConfig config_;
};

}  // namespace oda::twin
