// Telemetry replay harness (Fig 11): feed a recorded (or synthetic)
// system power trace through the twin — loss model + transient cooling —
// and produce the virtual plant response for verification & validation.
#pragma once

#include <string>
#include <vector>

#include "common/time.hpp"
#include "sql/table.hpp"
#include "twin/cooling.hpp"
#include "twin/losses.hpp"

namespace oda::twin {

struct PowerSample {
  common::TimePoint time = 0;
  double it_power_w = 0.0;
};

struct ReplayConfig {
  double ambient_wetbulb_c = 18.0;
  common::Duration step = 5 * common::kSecond;
  LossModelConfig losses;
  CoolingConfig cooling;
  /// Settle the plant at the trace's initial load before replaying.
  common::Duration warmup = 30 * common::kMinute;
};

struct ReplayResult {
  /// (time, it_power_w, input_power_w, rectifier_loss_w, conversion_loss_w,
  ///  t_supply_c, t_return_c, t_tower_c, tower_duty, cooling_power_w, pue)
  sql::Table timeline;
  double mean_loss_fraction = 0.0;
  double mean_pue = 0.0;
  double max_return_c = 0.0;
  /// Lag (seconds) between the IT power peak and the return-temp peak —
  /// the transient signature Fig 11 shows.
  double thermal_lag_s = 0.0;
};

class ReplayHarness {
 public:
  explicit ReplayHarness(ReplayConfig config = {});

  ReplayResult replay(const std::vector<PowerSample>& trace);

 private:
  ReplayConfig config_;
};

/// Synthetic HPL run power trace: idle → staged ramp-up → sustained full
/// power with slow decay per HPL phase → sharp drop at completion. This
/// is the "telemetry replay of a HPL run" of Fig 11 when production
/// traces are unavailable.
std::vector<PowerSample> synthetic_hpl_trace(double idle_mw, double peak_mw,
                                             common::Duration duration,
                                             common::Duration step = 5 * common::kSecond);

/// Linear interpolation of a trace at arbitrary times (V&V resampling).
double trace_at(const std::vector<PowerSample>& trace, common::TimePoint t);

}  // namespace oda::twin
