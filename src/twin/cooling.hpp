// Transient thermo-fluidic cooling model (the ExaDigiT cooling module,
// Fig 11 middle/right): a lumped-parameter network — cold plates, the
// secondary (facility water) loop through CDU heat exchangers, and an
// evaporative cooling tower — integrated with RK4, with a PI controller
// trimming tower duty to hold the supply-temperature setpoint.
//
// White-box by design: every coefficient is physical (thermal masses,
// UA products, flow heat capacities), so the model extrapolates to
// load states never seen in training data — the paper's argument for
// white-box twins over black-box ML.
#pragma once

#include <vector>

#include "common/time.hpp"

namespace oda::twin {

/// Time integrator for the thermal ODEs. RK4 is the default; forward
/// Euler is provided for the numerical ablation (it goes unstable once
/// the step exceeds ~2x the fastest thermal time constant).
enum class Integrator : std::uint8_t { kRk4 = 0, kEuler = 1 };

struct CoolingConfig {
  Integrator integrator = Integrator::kRk4;
  // Thermal masses (J/K): water volume + metal of each lump.
  double coldplate_capacity = 6.0e7;
  double secondary_capacity = 2.5e8;
  double tower_capacity = 4.0e8;

  // Heat transfer coefficients (W/K).
  double ua_coldplate = 2.8e6;   ///< cold plate <-> primary coolant
  double ua_cdu_hx = 3.2e6;      ///< primary <-> secondary loop HX
  double ua_tower = 2.5e6;       ///< tower water <-> ambient wet bulb, at full fan

  // Flows (kg/s) and water heat capacity.
  double primary_flow_kg_s = 450.0;
  double secondary_flow_kg_s = 700.0;
  double cp_water = 4186.0;  ///< J/(kg K)

  // Control.
  double supply_setpoint_c = 21.0;
  double pi_kp = 0.8;
  double pi_ki = 0.01;

  // Parasitic (pump/fan) power model.
  double pump_power_w = 250e3;
  double tower_fan_rated_w = 400e3;
};

struct CoolingState {
  double t_coldplate_c = 25.0;  ///< cold plate / chip interface lump
  double t_supply_c = 21.0;     ///< coolant supplied to cabinets
  double t_return_c = 29.0;     ///< coolant returning from cabinets
  double t_tower_c = 24.0;      ///< tower basin water
  double tower_duty = 0.5;      ///< fan command in [0,1]
  double pi_integral = 0.0;
};

struct CoolingOutputs {
  CoolingState state;
  double heat_rejected_w = 0.0;
  double cooling_power_w = 0.0;  ///< pumps + fans (PUE contribution)
};

class CoolingSystemModel {
 public:
  explicit CoolingSystemModel(CoolingConfig config = {});

  /// Advance by dt (facility seconds) under `it_heat_w` of IT heat and
  /// the given ambient wet-bulb temperature.
  CoolingOutputs step(double dt_s, double it_heat_w, double ambient_wetbulb_c);

  const CoolingState& state() const { return state_; }
  void set_state(const CoolingState& s) { state_ = s; }
  const CoolingConfig& config() const { return config_; }

  /// Analytic steady-state return temperature for a constant load
  /// (used by tests to check the ODE converges to physics).
  double steady_state_return_c(double it_heat_w, double ambient_wetbulb_c) const;

 private:
  /// dT/dt of the three thermal lumps for the current inputs.
  struct Derivs {
    double d_coldplate;
    double d_secondary;  ///< drives t_supply
    double d_tower;
  };
  Derivs derivatives(const CoolingState& s, double it_heat_w, double ambient_wetbulb_c) const;

  CoolingConfig config_;
  CoolingState state_;
};

}  // namespace oda::twin
