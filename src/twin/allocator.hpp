// ExaDigiT module (1): "a resource allocator and power simulator".
// Runs a virtual scheduler over a synthetic or replayed workload and
// predicts the system power trace white-box style (no sensor noise),
// which then drives the loss and cooling models — enabling what-if
// studies on workloads that never ran ("synthetic or real workloads").
#pragma once

#include <cstdint>
#include <vector>

#include "telemetry/job.hpp"
#include "telemetry/spec.hpp"
#include "twin/replay.hpp"

namespace oda::twin {

struct WorkloadResult {
  std::vector<PowerSample> power_trace;  ///< predicted component (IT) power
  double mean_node_utilization = 0.0;    ///< busy-node fraction over time
  double total_energy_mwh = 0.0;         ///< IT energy over the simulated span
  std::size_t jobs_completed = 0;
  double node_hours_delivered = 0.0;
};

struct AllocatorSimConfig {
  telemetry::SchedulerConfig scheduler;
  common::Duration step = 30 * common::kSecond;
  std::uint64_t seed = 99;
  /// Power cap applied to job utilization (1.0 = uncapped). The classic
  /// energy/what-if knob: trade throughput for peak power.
  double power_cap_util = 1.0;
};

class ResourceAllocatorSim {
 public:
  ResourceAllocatorSim(telemetry::SystemSpec spec, AllocatorSimConfig config);

  /// Simulate `span` of facility time; returns the predicted power trace
  /// and workload outcome metrics.
  WorkloadResult simulate(common::Duration span);

  /// Predicted mean component power (W) of one node at utilization u
  /// given the spec's envelopes (the white-box power model).
  static double node_power_w(const telemetry::SystemSpec& spec, double cpu_util, double gpu_util);

 private:
  telemetry::SystemSpec spec_;
  AllocatorSimConfig config_;
};

}  // namespace oda::twin
