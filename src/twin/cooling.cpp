#include "twin/cooling.hpp"

#include <algorithm>
#include <cmath>

namespace oda::twin {

CoolingSystemModel::CoolingSystemModel(CoolingConfig config) : config_(config) {}

CoolingSystemModel::Derivs CoolingSystemModel::derivatives(const CoolingState& s, double it_heat_w,
                                                           double ambient_wetbulb_c) const {
  // Heat path: IT -> cold plate -> primary coolant -> CDU HX -> secondary
  // loop -> cooling tower -> ambient.
  const double q_plate_to_primary = config_.ua_coldplate * (s.t_coldplate_c - s.t_supply_c);
  const double q_hx = config_.ua_cdu_hx * (s.t_return_c - s.t_tower_c);
  const double ua_tower_eff = config_.ua_tower * std::clamp(s.tower_duty, 0.05, 1.0);
  const double q_tower = ua_tower_eff * (s.t_tower_c - ambient_wetbulb_c);

  Derivs d;
  d.d_coldplate = (it_heat_w - q_plate_to_primary) / config_.coldplate_capacity;
  // Secondary lump tracks the supply temperature: heated by the HX
  // bypass remainder, cooled as heat moves to the tower loop.
  d.d_secondary = (q_plate_to_primary - q_hx) / config_.secondary_capacity;
  d.d_tower = (q_hx - q_tower) / config_.tower_capacity;
  return d;
}

CoolingOutputs CoolingSystemModel::step(double dt_s, double it_heat_w, double ambient_wetbulb_c) {
  // PI controller on supply temperature -> tower fan duty.
  const double err = state_.t_supply_c - config_.supply_setpoint_c;
  state_.pi_integral = std::clamp(state_.pi_integral + err * dt_s, -200.0, 200.0);
  state_.tower_duty =
      std::clamp(0.3 + config_.pi_kp * err + config_.pi_ki * state_.pi_integral, 0.05, 1.0);

  // RK4 over the three lumped temperatures.
  auto apply = [&](const CoolingState& base, const Derivs& d, double h) {
    CoolingState s = base;
    s.t_coldplate_c = base.t_coldplate_c + h * d.d_coldplate;
    s.t_supply_c = base.t_supply_c + h * d.d_secondary;
    s.t_tower_c = base.t_tower_c + h * d.d_tower;
    // Return temperature is algebraic: supply + Q/(m*cp).
    s.t_return_c = s.t_supply_c + it_heat_w / (config_.primary_flow_kg_s * config_.cp_water);
    return s;
  };

  if (config_.integrator == Integrator::kEuler) {
    // Forward Euler — the ablation baseline. One derivative evaluation,
    // conditionally stable.
    const Derivs k1 = derivatives(state_, it_heat_w, ambient_wetbulb_c);
    state_ = apply(state_, k1, dt_s);
  } else {
    const Derivs k1 = derivatives(state_, it_heat_w, ambient_wetbulb_c);
    const CoolingState s2 = apply(state_, k1, dt_s / 2);
    const Derivs k2 = derivatives(s2, it_heat_w, ambient_wetbulb_c);
    const CoolingState s3 = apply(state_, k2, dt_s / 2);
    const Derivs k3 = derivatives(s3, it_heat_w, ambient_wetbulb_c);
    const CoolingState s4 = apply(state_, k3, dt_s);
    const Derivs k4 = derivatives(s4, it_heat_w, ambient_wetbulb_c);

    Derivs avg;
    avg.d_coldplate =
        (k1.d_coldplate + 2 * k2.d_coldplate + 2 * k3.d_coldplate + k4.d_coldplate) / 6.0;
    avg.d_secondary =
        (k1.d_secondary + 2 * k2.d_secondary + 2 * k3.d_secondary + k4.d_secondary) / 6.0;
    avg.d_tower = (k1.d_tower + 2 * k2.d_tower + 2 * k3.d_tower + k4.d_tower) / 6.0;
    state_ = apply(state_, avg, dt_s);
  }

  CoolingOutputs out;
  out.state = state_;
  const double ua_tower_eff = config_.ua_tower * std::clamp(state_.tower_duty, 0.05, 1.0);
  out.heat_rejected_w = ua_tower_eff * (state_.t_tower_c - ambient_wetbulb_c);
  // Fan power follows the cube law with duty; pumps are constant-speed.
  out.cooling_power_w =
      config_.pump_power_w + config_.tower_fan_rated_w * std::pow(state_.tower_duty, 3.0);
  return out;
}

double CoolingSystemModel::steady_state_return_c(double it_heat_w, double ambient_wetbulb_c) const {
  // At steady state all lumps pass `it_heat_w`:
  //   t_tower  = ambient + Q / (ua_tower * duty)        (duty unknown; assume controller holds setpoint
  //   t_return = t_supply + Q / (m_primary * cp)         when feasible, so t_supply = setpoint)
  const double supply = config_.supply_setpoint_c;
  (void)ambient_wetbulb_c;
  return supply + it_heat_w / (config_.primary_flow_kg_s * config_.cp_water);
}

}  // namespace oda::twin
