#include "twin/replay.hpp"

#include <algorithm>
#include <cmath>

namespace oda::twin {

using common::Duration;
using common::TimePoint;
using sql::DataType;
using sql::Value;

ReplayHarness::ReplayHarness(ReplayConfig config) : config_(config) {}

ReplayResult ReplayHarness::replay(const std::vector<PowerSample>& trace) {
  ReplayResult result;
  sql::Schema schema{{"time", DataType::kInt64},
                     {"it_power_w", DataType::kFloat64},
                     {"input_power_w", DataType::kFloat64},
                     {"rectifier_loss_w", DataType::kFloat64},
                     {"conversion_loss_w", DataType::kFloat64},
                     {"t_supply_c", DataType::kFloat64},
                     {"t_return_c", DataType::kFloat64},
                     {"t_tower_c", DataType::kFloat64},
                     {"tower_duty", DataType::kFloat64},
                     {"cooling_power_w", DataType::kFloat64},
                     {"pue", DataType::kFloat64}};
  result.timeline = sql::Table(schema);
  if (trace.empty()) return result;

  PowerLossModel losses(config_.losses);
  CoolingSystemModel cooling(config_.cooling);

  // Warm the plant up at the initial load so transients in the replay
  // are the trace's, not the initial condition's.
  const double dt_s = common::to_seconds(config_.step);
  for (Duration t = 0; t < config_.warmup; t += config_.step) {
    cooling.step(dt_s, trace.front().it_power_w, config_.ambient_wetbulb_c);
  }

  double loss_acc = 0.0, pue_acc = 0.0;
  std::size_t n = 0;
  double peak_power = 0.0, peak_return = 0.0;
  TimePoint peak_power_t = 0, peak_return_t = 0;

  for (TimePoint t = trace.front().time; t <= trace.back().time; t += config_.step) {
    const double it_w = trace_at(trace, t);
    const PowerBreakdown pb = losses.compute(it_w);
    const CoolingOutputs co = cooling.step(dt_s, it_w, config_.ambient_wetbulb_c);
    const double facility_w = pb.total_input_w + co.cooling_power_w;
    const double pue = pb.it_power_w > 0 ? facility_w / pb.it_power_w : 1.0;

    result.timeline.append_row({Value(t), Value(pb.it_power_w), Value(pb.total_input_w),
                                Value(pb.rectifier_loss_w), Value(pb.conversion_loss_w),
                                Value(co.state.t_supply_c), Value(co.state.t_return_c),
                                Value(co.state.t_tower_c), Value(co.state.tower_duty),
                                Value(co.cooling_power_w), Value(pue)});
    loss_acc += pb.loss_fraction();
    pue_acc += pue;
    ++n;
    if (it_w > peak_power) {
      peak_power = it_w;
      peak_power_t = t;
    }
    if (co.state.t_return_c > peak_return) {
      peak_return = co.state.t_return_c;
      peak_return_t = t;
    }
  }
  result.mean_loss_fraction = n ? loss_acc / static_cast<double>(n) : 0.0;
  result.mean_pue = n ? pue_acc / static_cast<double>(n) : 0.0;
  result.max_return_c = peak_return;
  result.thermal_lag_s = common::to_seconds(peak_return_t - peak_power_t);
  return result;
}

std::vector<PowerSample> synthetic_hpl_trace(double idle_mw, double peak_mw, Duration duration,
                                             Duration step) {
  std::vector<PowerSample> trace;
  const double idle_w = idle_mw * 1e6;
  const double peak_w = peak_mw * 1e6;
  for (TimePoint t = 0; t <= duration; t += step) {
    const double x = static_cast<double>(t) / static_cast<double>(duration);
    double frac;
    if (x < 0.03) {
      frac = 0.0;  // pre-run idle
    } else if (x < 0.08) {
      frac = (x - 0.03) / 0.05;  // panel factorization ramp
    } else if (x < 0.90) {
      // Sustained run with the characteristic slow decay as trailing
      // panels shrink, plus small oscillation from the broadcast phases.
      const double progress = (x - 0.08) / 0.82;
      frac = 1.0 - 0.18 * progress * progress + 0.02 * std::sin(60.0 * x);
    } else if (x < 0.93) {
      frac = 0.35;  // backsolve / verification
    } else {
      frac = 0.0;  // post-run idle
    }
    trace.push_back({t, idle_w + std::clamp(frac, 0.0, 1.1) * (peak_w - idle_w)});
  }
  return trace;
}

double trace_at(const std::vector<PowerSample>& trace, TimePoint t) {
  if (trace.empty()) return 0.0;
  if (t <= trace.front().time) return trace.front().it_power_w;
  if (t >= trace.back().time) return trace.back().it_power_w;
  const auto it = std::lower_bound(trace.begin(), trace.end(), t,
                                   [](const PowerSample& s, TimePoint v) { return s.time < v; });
  const auto hi = static_cast<std::size_t>(it - trace.begin());
  const auto lo = hi - 1;
  const double frac = static_cast<double>(t - trace[lo].time) /
                      static_cast<double>(trace[hi].time - trace[lo].time);
  return trace[lo].it_power_w + frac * (trace[hi].it_power_w - trace[lo].it_power_w);
}

}  // namespace oda::twin
