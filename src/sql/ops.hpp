// Row-relational operators: SELECT / WHERE / ORDER BY / JOIN / LIMIT.
//
// Together with agg.hpp these are the building blocks of every ODA
// pipeline stage in the paper's Fig 4-b anatomy.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "sql/expr.hpp"
#include "sql/table.hpp"

namespace oda::sql {

/// WHERE: rows for which `pred` evaluates to true (nulls excluded).
Table filter(const Table& t, const ExprPtr& pred);

/// SELECT a subset of columns by name, in the given order.
Table project(const Table& t, std::span<const std::string> columns);
Table project(const Table& t, std::initializer_list<std::string> columns);

/// SELECT ... , <expr> AS <name>: append a derived column.
Table with_column(const Table& t, const std::string& name, DataType type, const ExprPtr& e);

/// Rename a column in place (schema-level; data untouched).
Table rename_column(const Table& t, const std::string& from, const std::string& to);

struct SortKey {
  std::string column;
  bool ascending = true;
};

/// ORDER BY (stable).
Table sort_by(const Table& t, std::span<const SortKey> keys);
Table sort_by(const Table& t, std::initializer_list<SortKey> keys);

/// LIMIT.
Table limit(const Table& t, std::size_t n);

/// DISTINCT over the given key columns (first row per key wins).
Table distinct(const Table& t, std::span<const std::string> keys);

enum class JoinType { kInner, kLeft };

/// Hash equi-join on identically named key columns. Non-key right
/// columns that collide with left names get `suffix` appended.
Table hash_join(const Table& left, const Table& right, std::span<const std::string> keys,
                JoinType type = JoinType::kInner, const std::string& suffix = "_r");
Table hash_join(const Table& left, const Table& right, std::initializer_list<std::string> keys,
                JoinType type = JoinType::kInner, const std::string& suffix = "_r");

/// Vertical concatenation (schemas must match).
Table concat(std::span<const Table> tables);

/// Encode the key-tuple of row `i` into `out` (stable across calls; used
/// by group-by, distinct and join for hashing).
void encode_key(const Table& t, std::span<const std::size_t> key_cols, std::size_t i, std::string& out);

}  // namespace oda::sql
