#include "sql/expr.hpp"

#include <stdexcept>

namespace oda::sql {
namespace {

class ColumnExpr final : public Expr {
 public:
  explicit ColumnExpr(std::string name) : name_(std::move(name)) {}
  Kind kind() const override { return Kind::kColumn; }
  Value eval(const Table& t, std::size_t i) const override {
    // Cache the column index per table identity; tables are immutable
    // during evaluation so this is safe within a single query.
    if (cached_table_ != &t) {
      cached_index_ = t.col_index(name_);
      cached_table_ = &t;
    }
    return t.column(cached_index_).get(i);
  }
  std::string to_string() const override { return name_; }

 private:
  std::string name_;
  mutable const Table* cached_table_ = nullptr;
  mutable std::size_t cached_index_ = 0;
};

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value v) : v_(std::move(v)) {}
  Kind kind() const override { return Kind::kLiteral; }
  Value eval(const Table&, std::size_t) const override { return v_; }
  std::string to_string() const override { return v_.to_string(); }

 private:
  Value v_;
};

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr e) : op_(op), e_(std::move(e)) {}
  Kind kind() const override { return Kind::kUnary; }
  Value eval(const Table& t, std::size_t i) const override {
    const Value v = e_->eval(t, i);
    switch (op_) {
      case UnaryOp::kIsNull: return Value(v.is_null());
      case UnaryOp::kIsNotNull: return Value(!v.is_null());
      case UnaryOp::kNot:
        if (v.is_null()) return Value::null();
        return Value(!v.as_bool());
      case UnaryOp::kNeg:
        if (v.is_null()) return Value::null();
        if (v.type() == DataType::kInt64) return Value(-v.as_int());
        return Value(-v.as_double());
    }
    throw std::logic_error("unreachable");
  }
  std::string to_string() const override {
    switch (op_) {
      case UnaryOp::kNot: return "NOT(" + e_->to_string() + ")";
      case UnaryOp::kNeg: return "-(" + e_->to_string() + ")";
      case UnaryOp::kIsNull: return "(" + e_->to_string() + " IS NULL)";
      case UnaryOp::kIsNotNull: return "(" + e_->to_string() + " IS NOT NULL)";
    }
    return "?";
  }

 private:
  UnaryOp op_;
  ExprPtr e_;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr l, ExprPtr r) : op_(op), l_(std::move(l)), r_(std::move(r)) {}
  Kind kind() const override { return Kind::kBinary; }

  Value eval(const Table& t, std::size_t i) const override {
    // Short-circuit logic ops with SQL-ish null collapse (null -> false).
    if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
      const Value l = l_->eval(t, i);
      const bool lb = !l.is_null() && l.as_bool();
      if (op_ == BinaryOp::kAnd && !lb) return Value(false);
      if (op_ == BinaryOp::kOr && lb) return Value(true);
      const Value r = r_->eval(t, i);
      return Value(!r.is_null() && r.as_bool());
    }
    const Value l = l_->eval(t, i);
    const Value r = r_->eval(t, i);
    if (l.is_null() || r.is_null()) return Value::null();
    switch (op_) {
      case BinaryOp::kAdd: return arith(l, r, [](double a, double b) { return a + b; },
                                        [](std::int64_t a, std::int64_t b) { return a + b; });
      case BinaryOp::kSub: return arith(l, r, [](double a, double b) { return a - b; },
                                        [](std::int64_t a, std::int64_t b) { return a - b; });
      case BinaryOp::kMul: return arith(l, r, [](double a, double b) { return a * b; },
                                        [](std::int64_t a, std::int64_t b) { return a * b; });
      case BinaryOp::kDiv: {
        const double d = r.as_double();
        if (d == 0.0) return Value::null();
        return Value(l.as_double() / d);
      }
      case BinaryOp::kEq: return Value(compare_eq(l, r));
      case BinaryOp::kNe: return Value(!compare_eq(l, r));
      case BinaryOp::kLt: return Value(l < r);
      case BinaryOp::kLe: return Value(!(r < l));
      case BinaryOp::kGt: return Value(r < l);
      case BinaryOp::kGe: return Value(!(l < r));
      default: throw std::logic_error("unreachable");
    }
  }

  std::string to_string() const override {
    static const char* names[] = {"+", "-", "*", "/", "=", "!=", "<", "<=", ">", ">=", "AND", "OR"};
    return "(" + l_->to_string() + " " + names[static_cast<int>(op_)] + " " + r_->to_string() + ")";
  }

 private:
  template <typename FD, typename FI>
  static Value arith(const Value& l, const Value& r, FD fd, FI fi) {
    if (l.type() == DataType::kInt64 && r.type() == DataType::kInt64) return Value(fi(l.as_int(), r.as_int()));
    return Value(fd(l.as_double(), r.as_double()));
  }
  static bool compare_eq(const Value& l, const Value& r) {
    // Numeric cross-type equality compares numerically.
    const bool ln = l.type() == DataType::kInt64 || l.type() == DataType::kFloat64;
    const bool rn = r.type() == DataType::kInt64 || r.type() == DataType::kFloat64;
    if (ln && rn) return l.as_double() == r.as_double();
    return l == r;
  }

  BinaryOp op_;
  ExprPtr l_;
  ExprPtr r_;
};

}  // namespace

ExprPtr col(std::string name) { return std::make_shared<ColumnExpr>(std::move(name)); }
ExprPtr lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr unary(UnaryOp op, ExprPtr e) { return std::make_shared<UnaryExpr>(op, std::move(e)); }
ExprPtr binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_shared<BinaryExpr>(op, std::move(lhs), std::move(rhs));
}

}  // namespace oda::sql
