#include "sql/value.hpp"

#include <cstdio>

namespace oda::sql {

const char* type_name(DataType t) {
  switch (t) {
    case DataType::kNull: return "null";
    case DataType::kInt64: return "int64";
    case DataType::kFloat64: return "float64";
    case DataType::kString: return "string";
    case DataType::kBool: return "bool";
  }
  return "?";
}

bool Value::operator<(const Value& o) const {
  const DataType a = type(), b = o.type();
  // Nulls sort first.
  if (a == DataType::kNull || b == DataType::kNull) {
    return a == DataType::kNull && b != DataType::kNull;
  }
  const bool a_num = a != DataType::kString, b_num = b != DataType::kString;
  if (a_num && b_num) return as_double() < o.as_double();
  if (a == DataType::kString && b == DataType::kString) return as_string() < o.as_string();
  // Mixed string/numeric: numerics sort before strings (arbitrary but total).
  return a_num && !b_num;
}

std::string Value::to_string() const {
  switch (type()) {
    case DataType::kNull: return "null";
    case DataType::kInt64: return std::to_string(as_int());
    case DataType::kFloat64: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%g", as_double());
      return buf;
    }
    case DataType::kString: return as_string();
    case DataType::kBool: return as_bool() ? "true" : "false";
  }
  return "?";
}

}  // namespace oda::sql
