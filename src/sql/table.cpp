#include "sql/table.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace oda::sql {

std::string Schema::to_string() const {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (i) os << ", ";
    os << fields_[i].name << ":" << type_name(fields_[i].type);
  }
  os << ")";
  return os.str();
}

std::size_t Column::null_count() const {
  return static_cast<std::size_t>(std::count(valid_.begin(), valid_.end(), std::uint8_t{0}));
}

void Column::append(const Value& v) {
  if (v.is_null()) {
    append_null();
    return;
  }
  switch (type_) {
    case DataType::kInt64: append_int(v.as_int()); break;
    case DataType::kFloat64: append_double(v.as_double()); break;
    case DataType::kString: append_string(v.as_string()); break;
    case DataType::kBool: append_bool(v.as_bool()); break;
    case DataType::kNull: append_null(); break;
  }
}

void Column::append_null() {
  switch (type_) {
    case DataType::kInt64: ints_.push_back(0); break;
    case DataType::kFloat64: doubles_.push_back(0.0); break;
    case DataType::kString: strings_.emplace_back(); break;
    case DataType::kBool: bools_.push_back(0); break;
    case DataType::kNull: break;
  }
  valid_.push_back(0);
}

void Column::append_int(std::int64_t v) {
  if (type_ == DataType::kFloat64) {
    doubles_.push_back(static_cast<double>(v));
  } else if (type_ == DataType::kInt64) {
    ints_.push_back(v);
  } else {
    throw std::runtime_error("Column: int into non-numeric column");
  }
  valid_.push_back(1);
}

void Column::append_double(double v) {
  if (type_ == DataType::kInt64) {
    ints_.push_back(static_cast<std::int64_t>(v));
  } else if (type_ == DataType::kFloat64) {
    doubles_.push_back(v);
  } else {
    throw std::runtime_error("Column: double into non-numeric column");
  }
  valid_.push_back(1);
}

void Column::append_string(std::string v) {
  if (type_ != DataType::kString) throw std::runtime_error("Column: string into non-string column");
  strings_.push_back(std::move(v));
  valid_.push_back(1);
}

void Column::append_bool(bool v) {
  if (type_ != DataType::kBool) throw std::runtime_error("Column: bool into non-bool column");
  bools_.push_back(v ? 1 : 0);
  valid_.push_back(1);
}

Value Column::get(std::size_t i) const {
  if (is_null(i)) return Value::null();
  switch (type_) {
    case DataType::kInt64: return Value(ints_[i]);
    case DataType::kFloat64: return Value(doubles_[i]);
    case DataType::kString: return Value(strings_[i]);
    case DataType::kBool: return Value(bools_[i] != 0);
    case DataType::kNull: return Value::null();
  }
  return Value::null();
}

void Column::reserve(std::size_t n) {
  valid_.reserve(n);
  switch (type_) {
    case DataType::kInt64: ints_.reserve(n); break;
    case DataType::kFloat64: doubles_.reserve(n); break;
    case DataType::kString: strings_.reserve(n); break;
    case DataType::kBool: bools_.reserve(n); break;
    case DataType::kNull: break;
  }
}

void Column::truncate(std::size_t n) {
  if (n >= valid_.size()) return;
  valid_.resize(n);
  switch (type_) {
    case DataType::kInt64: ints_.resize(n); break;
    case DataType::kFloat64: doubles_.resize(n); break;
    case DataType::kString: strings_.resize(n); break;
    case DataType::kBool: bools_.resize(n); break;
    case DataType::kNull: break;
  }
}

std::size_t Column::memory_bytes() const {
  std::size_t b = valid_.capacity();
  b += ints_.capacity() * sizeof(std::int64_t);
  b += doubles_.capacity() * sizeof(double);
  b += bools_.capacity();
  for (const auto& s : strings_) b += sizeof(std::string) + s.capacity();
  return b;
}

Table::Table(Schema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.size());
  for (const auto& f : schema_.fields()) columns_.emplace_back(f.type);
}

Table::Table(Schema schema, std::vector<Column> columns)
    : schema_(std::move(schema)), columns_(std::move(columns)) {
  if (columns_.size() != schema_.size()) throw std::invalid_argument("Table: column/schema arity mismatch");
  num_rows_ = columns_.empty() ? 0 : columns_.front().size();
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].size() != num_rows_) throw std::invalid_argument("Table: ragged columns");
    if (columns_[i].type() != schema_.field(i).type) throw std::invalid_argument("Table: column type mismatch");
  }
}

const Column& Table::column(std::string_view name) const { return columns_.at(col_index(name)); }

std::size_t Table::col_index(std::string_view name) const {
  const std::size_t i = schema_.index_of(name);
  if (i == Schema::npos) {
    throw std::out_of_range("Table: no column named '" + std::string(name) + "' in " + schema_.to_string());
  }
  return i;
}

void Table::append_row(std::span<const Value> row) {
  if (row.size() != columns_.size()) throw std::invalid_argument("Table: row arity mismatch");
  for (std::size_t i = 0; i < row.size(); ++i) columns_[i].append(row[i]);
  ++num_rows_;
}

void Table::append_row(std::initializer_list<Value> row) {
  append_row(std::span<const Value>(row.begin(), row.size()));
}

void Table::append_table(const Table& other) {
  if (!(other.schema_ == schema_)) throw std::invalid_argument("Table: schema mismatch in append_table");
  for (std::size_t r = 0; r < other.num_rows_; ++r) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      columns_[c].append(other.columns_[c].get(r));
    }
  }
  num_rows_ += other.num_rows_;
}

Table Table::take(std::span<const std::size_t> indices) const {
  Table out(schema_);
  out.reserve(indices.size());
  for (std::size_t idx : indices) {
    for (std::size_t c = 0; c < columns_.size(); ++c) out.columns_[c].append(columns_[c].get(idx));
    ++out.num_rows_;
  }
  return out;
}

std::vector<Value> Table::row(std::size_t i) const {
  std::vector<Value> out;
  out.reserve(columns_.size());
  for (const auto& c : columns_) out.push_back(c.get(i));
  return out;
}

void Table::reserve(std::size_t n) {
  for (auto& c : columns_) c.reserve(n);
}

void Table::truncate(std::size_t n) {
  if (n >= num_rows_) return;
  for (auto& c : columns_) c.truncate(n);
  num_rows_ = n;
}

std::size_t Table::memory_bytes() const {
  return std::accumulate(columns_.begin(), columns_.end(), std::size_t{0},
                         [](std::size_t acc, const Column& c) { return acc + c.memory_bytes(); });
}

std::string Table::to_string(std::size_t max_rows) const {
  std::ostringstream os;
  os << schema_.to_string() << " rows=" << num_rows_ << "\n";
  const std::size_t n = std::min(num_rows_, max_rows);
  for (std::size_t r = 0; r < n; ++r) {
    os << "  ";
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c) os << " | ";
      os << columns_[c].get(r).to_string();
    }
    os << "\n";
  }
  if (n < num_rows_) os << "  ... (" << (num_rows_ - n) << " more)\n";
  return os.str();
}

namespace {
void append_csv_field(std::string& out, const std::string& field) {
  const bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    out += field;
    return;
  }
  out += '"';
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
}
}  // namespace

std::string to_csv(const Table& t) {
  std::string out;
  for (std::size_t c = 0; c < t.schema().size(); ++c) {
    if (c) out += ',';
    append_csv_field(out, t.schema().field(c).name);
  }
  out += '\n';
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    for (std::size_t c = 0; c < t.num_columns(); ++c) {
      if (c) out += ',';
      if (!t.column(c).is_null(r)) append_csv_field(out, t.column(c).get(r).to_string());
    }
    out += '\n';
  }
  return out;
}

}  // namespace oda::sql
