#include "sql/agg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "common/stats.hpp"
#include "sql/expr.hpp"
#include "sql/ops.hpp"

namespace oda::sql {
namespace {

bool needs_samples(AggKind k) { return k == AggKind::kP50 || k == AggKind::kP95 || k == AggKind::kP99; }

/// Per-group, per-aggregate accumulator.
struct AggState {
  double sum = 0.0;
  double sumsq = 0.0;
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  Value first;
  Value last;
  std::vector<double> samples;                 // only for quantiles
  std::unordered_set<std::string> distincts;   // only for count-distinct

  void add(const Value& v, AggKind kind) {
    if (v.is_null()) return;
    if (kind == AggKind::kCountDistinct) {
      distincts.insert(v.to_string());
      ++count;
      return;
    }
    if (kind == AggKind::kFirst) {
      if (count == 0) first = v;
      ++count;
      return;
    }
    if (kind == AggKind::kLast) {
      last = v;
      ++count;
      return;
    }
    if (kind == AggKind::kCount) {
      ++count;
      return;
    }
    const double x = v.as_double();
    if (count == 0) {
      min = max = x;
    } else {
      min = std::min(min, x);
      max = std::max(max, x);
    }
    sum += x;
    sumsq += x * x;
    ++count;
    if (needs_samples(kind)) samples.push_back(x);
  }

  Value result(AggKind kind) const {
    switch (kind) {
      case AggKind::kCount: return Value(static_cast<std::int64_t>(count));
      case AggKind::kCountDistinct: return Value(static_cast<std::int64_t>(distincts.size()));
      case AggKind::kFirst: return first;
      case AggKind::kLast: return last;
      default: break;
    }
    if (count == 0) return Value::null();
    switch (kind) {
      case AggKind::kSum: return Value(sum);
      case AggKind::kMean: return Value(sum / static_cast<double>(count));
      case AggKind::kMin: return Value(min);
      case AggKind::kMax: return Value(max);
      case AggKind::kStd: {
        if (count < 2) return Value(0.0);
        const double n = static_cast<double>(count);
        const double var = std::max(0.0, (sumsq - sum * sum / n) / (n - 1));
        return Value(std::sqrt(var));
      }
      case AggKind::kP50: return Value(common::exact_quantile(samples, 0.50));
      case AggKind::kP95: return Value(common::exact_quantile(samples, 0.95));
      case AggKind::kP99: return Value(common::exact_quantile(samples, 0.99));
      default: throw std::logic_error("unreachable");
    }
  }
};

DataType output_type(const Table& t, const AggSpec& spec) {
  switch (spec.kind) {
    case AggKind::kCount:
    case AggKind::kCountDistinct:
      return DataType::kInt64;
    case AggKind::kFirst:
    case AggKind::kLast:
      return t.schema().field(t.col_index(spec.column)).type;
    default:
      return DataType::kFloat64;
  }
}

std::string output_name(const AggSpec& spec) {
  if (!spec.output_name.empty()) return spec.output_name;
  if (spec.column.empty()) return agg_name(spec.kind);
  return std::string(agg_name(spec.kind)) + "_" + spec.column;
}

}  // namespace

const char* agg_name(AggKind k) {
  switch (k) {
    case AggKind::kSum: return "sum";
    case AggKind::kMean: return "mean";
    case AggKind::kMin: return "min";
    case AggKind::kMax: return "max";
    case AggKind::kCount: return "count";
    case AggKind::kCountDistinct: return "count_distinct";
    case AggKind::kFirst: return "first";
    case AggKind::kLast: return "last";
    case AggKind::kStd: return "std";
    case AggKind::kP50: return "p50";
    case AggKind::kP95: return "p95";
    case AggKind::kP99: return "p99";
  }
  return "?";
}

Table group_by(const Table& t, std::span<const std::string> keys, std::span<const AggSpec> aggs) {
  std::vector<std::size_t> key_cols;
  key_cols.reserve(keys.size());
  for (const auto& k : keys) key_cols.push_back(t.col_index(k));

  std::vector<std::size_t> agg_cols;
  agg_cols.reserve(aggs.size());
  for (const auto& a : aggs) {
    agg_cols.push_back(a.column.empty() && a.kind == AggKind::kCount ? Schema::npos : t.col_index(a.column));
  }

  struct Group {
    std::size_t exemplar_row;
    std::vector<AggState> states;
  };
  std::unordered_map<std::string, std::size_t> index;
  std::vector<Group> groups;
  std::string buf;
  for (std::size_t i = 0; i < t.num_rows(); ++i) {
    encode_key(t, key_cols, i, buf);
    auto [it, inserted] = index.emplace(buf, groups.size());
    if (inserted) groups.push_back(Group{i, std::vector<AggState>(aggs.size())});
    Group& g = groups[it->second];
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      const Value v = agg_cols[a] == Schema::npos ? Value(std::int64_t{1}) : t.column(agg_cols[a]).get(i);
      g.states[a].add(v, aggs[a].kind);
    }
  }

  Schema schema;
  for (std::size_t k = 0; k < keys.size(); ++k) schema.add(t.schema().field(key_cols[k]));
  for (const auto& a : aggs) schema.add({output_name(a), output_type(t, a)});

  Table out(schema);
  out.reserve(groups.size());
  std::vector<Value> row(schema.size());
  for (const auto& g : groups) {
    std::size_t c = 0;
    for (std::size_t kc : key_cols) row[c++] = t.column(kc).get(g.exemplar_row);
    for (std::size_t a = 0; a < aggs.size(); ++a) row[c++] = g.states[a].result(aggs[a].kind);
    out.append_row(row);
  }
  return out;
}

Table group_by(const Table& t, std::initializer_list<std::string> keys, std::initializer_list<AggSpec> aggs) {
  return group_by(t, std::span<const std::string>(keys.begin(), keys.size()),
                  std::span<const AggSpec>(aggs.begin(), aggs.size()));
}

Table window_aggregate(const Table& t, const std::string& time_column, common::Duration window,
                       std::span<const std::string> keys, std::span<const AggSpec> aggs,
                       const std::string& window_col) {
  const std::size_t tc = t.col_index(time_column);
  // Derive the window-start column without going through the expression
  // tree (this is the hottest Bronze→Silver path).
  Schema schema = t.schema();
  schema.add({window_col, DataType::kInt64});
  Table with_window(schema);
  with_window.reserve(t.num_rows());
  std::vector<Value> row(schema.size());
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    for (std::size_t c = 0; c < t.num_columns(); ++c) row[c] = t.column(c).get(r);
    const Column& time_col = t.column(tc);
    row.back() = time_col.is_null(r)
                     ? Value::null()
                     : Value(common::window_start(time_col.int_at(r), window));
    with_window.append_row(row);
  }

  std::vector<std::string> all_keys;
  all_keys.reserve(keys.size() + 1);
  all_keys.push_back(window_col);
  all_keys.insert(all_keys.end(), keys.begin(), keys.end());
  return group_by(with_window, all_keys, aggs);
}

Table pivot_wider(const Table& t, std::span<const std::string> index_cols, const std::string& names_from,
                  const std::string& values_from) {
  std::vector<std::size_t> idx_cols;
  idx_cols.reserve(index_cols.size());
  for (const auto& c : index_cols) idx_cols.push_back(t.col_index(c));
  const std::size_t name_col = t.col_index(names_from);
  const std::size_t value_col = t.col_index(values_from);
  if (t.column(name_col).type() != DataType::kString) {
    throw std::invalid_argument("pivot_wider: names_from must be a string column");
  }

  // Stable output schema: sorted distinct names.
  std::vector<std::string> names;
  {
    std::unordered_set<std::string> seen;
    for (std::size_t i = 0; i < t.num_rows(); ++i) {
      if (t.column(name_col).is_null(i)) continue;
      const std::string& n = t.column(name_col).str_at(i);
      if (seen.insert(n).second) names.push_back(n);
    }
    std::sort(names.begin(), names.end());
  }
  std::unordered_map<std::string, std::size_t> name_index;
  for (std::size_t i = 0; i < names.size(); ++i) name_index[names[i]] = i;

  struct Cell {
    double sum = 0.0;
    std::size_t count = 0;
  };
  struct PivotRow {
    std::size_t exemplar_row;
    std::vector<Cell> cells;
  };
  std::unordered_map<std::string, std::size_t> row_index;
  std::vector<PivotRow> rows;
  std::string buf;
  for (std::size_t i = 0; i < t.num_rows(); ++i) {
    encode_key(t, idx_cols, i, buf);
    auto [it, inserted] = row_index.emplace(buf, rows.size());
    if (inserted) rows.push_back(PivotRow{i, std::vector<Cell>(names.size())});
    if (t.column(name_col).is_null(i) || t.column(value_col).is_null(i)) continue;
    Cell& cell = rows[it->second].cells[name_index.at(t.column(name_col).str_at(i))];
    cell.sum += t.column(value_col).double_at(i);
    cell.count += 1;
  }

  Schema schema;
  for (std::size_t k = 0; k < index_cols.size(); ++k) schema.add(t.schema().field(idx_cols[k]));
  for (const auto& n : names) schema.add({n, DataType::kFloat64});

  Table out(schema);
  out.reserve(rows.size());
  std::vector<Value> row(schema.size());
  for (const auto& pr : rows) {
    std::size_t c = 0;
    for (std::size_t ic : idx_cols) row[c++] = t.column(ic).get(pr.exemplar_row);
    for (const auto& cell : pr.cells) {
      row[c++] = cell.count ? Value(cell.sum / static_cast<double>(cell.count)) : Value::null();
    }
    out.append_row(row);
  }
  return out;
}

Table pivot_wider(const Table& t, std::initializer_list<std::string> index_cols, const std::string& names_from,
                  const std::string& values_from) {
  return pivot_wider(t, std::span<const std::string>(index_cols.begin(), index_cols.size()), names_from,
                     values_from);
}

Table pivot_longer(const Table& t, std::span<const std::string> id_cols, const std::string& name_col,
                   const std::string& value_col) {
  std::vector<std::size_t> ids;
  ids.reserve(id_cols.size());
  for (const auto& c : id_cols) ids.push_back(t.col_index(c));

  std::vector<std::size_t> melt;
  for (std::size_t c = 0; c < t.num_columns(); ++c) {
    if (std::find(ids.begin(), ids.end(), c) != ids.end()) continue;
    const DataType ty = t.column(c).type();
    if (ty == DataType::kFloat64 || ty == DataType::kInt64) melt.push_back(c);
  }

  Schema schema;
  for (std::size_t i : ids) schema.add(t.schema().field(i));
  schema.add({name_col, DataType::kString});
  schema.add({value_col, DataType::kFloat64});

  Table out(schema);
  out.reserve(t.num_rows() * melt.size());
  std::vector<Value> row(schema.size());
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    for (std::size_t m : melt) {
      std::size_t c = 0;
      for (std::size_t i : ids) row[c++] = t.column(i).get(r);
      row[c++] = Value(t.schema().field(m).name);
      row[c++] = t.column(m).is_null(r) ? Value::null() : Value(t.column(m).double_at(r));
      out.append_row(row);
    }
  }
  return out;
}

}  // namespace oda::sql
