// GROUP BY / window aggregation / pivot — the heart of Bronze→Silver
// refinement (Fig 4-b): aggregate over time intervals, pivot long→wide,
// then slice-and-dice for Gold artifacts.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "sql/table.hpp"

namespace oda::sql {

enum class AggKind {
  kSum, kMean, kMin, kMax, kCount, kCountDistinct, kFirst, kLast, kStd, kP50, kP95, kP99,
};

const char* agg_name(AggKind k);

struct AggSpec {
  std::string column;  ///< Input column (ignored for kCount with empty name).
  AggKind kind = AggKind::kMean;
  std::string output_name;  ///< Defaults to "<agg>_<column>" when empty.
};

/// GROUP BY `keys` computing `aggs`. Group order is first-seen order
/// (deterministic for a given input order).
Table group_by(const Table& t, std::span<const std::string> keys, std::span<const AggSpec> aggs);
Table group_by(const Table& t, std::initializer_list<std::string> keys, std::initializer_list<AggSpec> aggs);

/// Tumbling-window aggregation: bucket `time_column` into `window`-sized
/// windows (column `window_col`, int64 window start), then GROUP BY
/// (window, keys...) computing `aggs`. This is the paper's "aggregated
/// over designated time intervals (e.g., every 15 seconds)".
Table window_aggregate(const Table& t, const std::string& time_column, common::Duration window,
                       std::span<const std::string> keys, std::span<const AggSpec> aggs,
                       const std::string& window_col = "window_start");

/// Long→wide pivot: one output row per distinct `index_cols` tuple; one
/// output column per distinct value of `names_from` (values taken from
/// `values_from`, duplicates resolved by mean). Missing cells are null.
/// Output column order is the sorted distinct name order (stable schema
/// regardless of input order — required for ML featurization).
Table pivot_wider(const Table& t, std::span<const std::string> index_cols, const std::string& names_from,
                  const std::string& values_from);
Table pivot_wider(const Table& t, std::initializer_list<std::string> index_cols, const std::string& names_from,
                  const std::string& values_from);

/// Wide→long unpivot: keep `id_cols`, melt every other numeric column
/// into (name_col, value_col) pairs.
Table pivot_longer(const Table& t, std::span<const std::string> id_cols, const std::string& name_col,
                   const std::string& value_col);

}  // namespace oda::sql
