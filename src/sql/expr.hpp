// Expression trees for WHERE / derived-column clauses.
//
// Usage mirrors a dataframe API:
//   auto e = (col("power_w") > lit(300.0)) && col("host") == lit("node042");
//   Table hot = filter(t, e);
#pragma once

#include <memory>
#include <string>

#include "sql/table.hpp"
#include "sql/value.hpp"

namespace oda::sql {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class UnaryOp { kNot, kNeg, kIsNull, kIsNotNull };
enum class BinaryOp {
  kAdd, kSub, kMul, kDiv,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

class Expr {
 public:
  enum class Kind { kColumn, kLiteral, kUnary, kBinary };

  virtual ~Expr() = default;
  virtual Kind kind() const = 0;
  /// Evaluate against row `i` of `t`. Null-propagating for arithmetic
  /// and comparisons; three-valued logic collapses null to false.
  virtual Value eval(const Table& t, std::size_t i) const = 0;
  virtual std::string to_string() const = 0;
};

ExprPtr col(std::string name);
ExprPtr lit(Value v);
ExprPtr unary(UnaryOp op, ExprPtr e);
ExprPtr binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);

inline ExprPtr operator+(ExprPtr a, ExprPtr b) { return binary(BinaryOp::kAdd, std::move(a), std::move(b)); }
inline ExprPtr operator-(ExprPtr a, ExprPtr b) { return binary(BinaryOp::kSub, std::move(a), std::move(b)); }
inline ExprPtr operator*(ExprPtr a, ExprPtr b) { return binary(BinaryOp::kMul, std::move(a), std::move(b)); }
inline ExprPtr operator/(ExprPtr a, ExprPtr b) { return binary(BinaryOp::kDiv, std::move(a), std::move(b)); }
inline ExprPtr operator==(ExprPtr a, ExprPtr b) { return binary(BinaryOp::kEq, std::move(a), std::move(b)); }
inline ExprPtr operator!=(ExprPtr a, ExprPtr b) { return binary(BinaryOp::kNe, std::move(a), std::move(b)); }
inline ExprPtr operator<(ExprPtr a, ExprPtr b) { return binary(BinaryOp::kLt, std::move(a), std::move(b)); }
inline ExprPtr operator<=(ExprPtr a, ExprPtr b) { return binary(BinaryOp::kLe, std::move(a), std::move(b)); }
inline ExprPtr operator>(ExprPtr a, ExprPtr b) { return binary(BinaryOp::kGt, std::move(a), std::move(b)); }
inline ExprPtr operator>=(ExprPtr a, ExprPtr b) { return binary(BinaryOp::kGe, std::move(a), std::move(b)); }
inline ExprPtr operator&&(ExprPtr a, ExprPtr b) { return binary(BinaryOp::kAnd, std::move(a), std::move(b)); }
inline ExprPtr operator||(ExprPtr a, ExprPtr b) { return binary(BinaryOp::kOr, std::move(a), std::move(b)); }
inline ExprPtr operator!(ExprPtr a) { return unary(UnaryOp::kNot, std::move(a)); }
inline ExprPtr is_null(ExprPtr a) { return unary(UnaryOp::kIsNull, std::move(a)); }
inline ExprPtr is_not_null(ExprPtr a) { return unary(UnaryOp::kIsNotNull, std::move(a)); }

}  // namespace oda::sql
