// Columnar table: the unit of data exchanged between pipeline stages.
//
// A Table is schema + columns. Bronze tables are "long" (one row per
// sensor observation); Silver tables are "wide" (one row per node per
// window). Pipelines transform Tables with the operators in ops.hpp and
// agg.hpp — the medallion anatomy of Fig 4-b.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sql/value.hpp"

namespace oda::sql {

struct Field {
  std::string name;
  DataType type = DataType::kFloat64;

  bool operator==(const Field&) const = default;
};

class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<Field> fields) : fields_(fields) {}
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  std::size_t size() const { return fields_.size(); }
  const Field& field(std::size_t i) const { return fields_.at(i); }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of a column by name; returns npos if absent.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t index_of(std::string_view name) const {
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (fields_[i].name == name) return i;
    }
    return npos;
  }
  bool contains(std::string_view name) const { return index_of(name) != npos; }

  void add(Field f) { fields_.push_back(std::move(f)); }

  bool operator==(const Schema&) const = default;

  std::string to_string() const;

 private:
  std::vector<Field> fields_;
};

/// A single typed column with a validity (non-null) mask. Physical
/// storage is a dense typed vector; the Value API converts at the edge.
class Column {
 public:
  explicit Column(DataType type = DataType::kFloat64) : type_(type) {}

  DataType type() const { return type_; }
  std::size_t size() const { return valid_.size(); }
  bool is_null(std::size_t i) const { return valid_[i] == 0; }
  std::size_t null_count() const;

  void append(const Value& v);
  void append_null();
  void append_int(std::int64_t v);
  void append_double(double v);
  void append_string(std::string v);
  void append_bool(bool v);

  Value get(std::size_t i) const;
  std::int64_t int_at(std::size_t i) const { return ints_[i]; }
  double double_at(std::size_t i) const {
    return type_ == DataType::kInt64 ? static_cast<double>(ints_[i]) : doubles_[i];
  }
  const std::string& str_at(std::size_t i) const { return strings_[i]; }
  bool bool_at(std::size_t i) const { return bools_[i] != 0; }

  /// Typed bulk views (valid only for the matching type).
  std::span<const std::int64_t> ints() const { return ints_; }
  std::span<const double> doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }

  void reserve(std::size_t n);
  /// Drop all rows beyond the first `n` (no-op when n >= size).
  void truncate(std::size_t n);

  /// Approximate in-memory footprint in bytes (for tier accounting).
  std::size_t memory_bytes() const;

 private:
  DataType type_;
  std::vector<std::int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<std::uint8_t> bools_;
  std::vector<std::uint8_t> valid_;
};

class Table {
 public:
  Table() = default;
  explicit Table(Schema schema);
  /// Construct from pre-built columns (all must have equal length and
  /// types matching the schema). Used by columnar readers.
  Table(Schema schema, std::vector<Column> columns);

  const Schema& schema() const { return schema_; }
  std::size_t num_rows() const { return num_rows_; }
  std::size_t num_columns() const { return columns_.size(); }
  bool empty() const { return num_rows_ == 0; }

  const Column& column(std::size_t i) const { return columns_.at(i); }
  const Column& column(std::string_view name) const;
  Column& column_mut(std::size_t i) { return columns_.at(i); }
  /// Column index by name; throws if absent.
  std::size_t col_index(std::string_view name) const;

  /// Append one row; values must match the schema arity (types are
  /// checked per column, nulls always allowed).
  void append_row(std::span<const Value> row);
  void append_row(std::initializer_list<Value> row);

  /// Append all rows of `other` (schemas must be equal).
  void append_table(const Table& other);

  /// Select a subset of rows by index, preserving order.
  Table take(std::span<const std::size_t> indices) const;

  /// Row as values (for tests/debug; the hot path is columnar).
  std::vector<Value> row(std::size_t i) const;

  void reserve(std::size_t n);
  /// Drop all rows beyond the first `n` (batch rollback support).
  void truncate(std::size_t n);
  std::size_t memory_bytes() const;

  /// Pretty-print up to `max_rows` rows (debug/report output).
  std::string to_string(std::size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Column> columns_;
  std::size_t num_rows_ = 0;
};

/// RFC-4180-style CSV export (header row; quotes doubled; fields with
/// commas/quotes/newlines quoted; nulls as empty fields) — the exchange
/// format for publicly released dataset artifacts.
std::string to_csv(const Table& t);

}  // namespace oda::sql
