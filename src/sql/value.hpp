// Scalar value model for the mini query engine.
//
// Telemetry pipelines only need four physical types: 64-bit ints
// (timestamps, ids, counters), doubles (sensor readings), strings
// (host/job/sensor names) and bools (flags). Nulls are first-class
// because real telemetry is lossy (Sec VIII-A: "skewed, and lossy").
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <variant>

namespace oda::sql {

enum class DataType : std::uint8_t { kNull = 0, kInt64 = 1, kFloat64 = 2, kString = 3, kBool = 4 };

const char* type_name(DataType t);

class Value {
 public:
  Value() : v_(std::monostate{}) {}
  Value(std::int64_t v) : v_(v) {}          // NOLINT(google-explicit-constructor)
  Value(int v) : v_(std::int64_t{v}) {}     // NOLINT(google-explicit-constructor)
  Value(double v) : v_(v) {}                // NOLINT(google-explicit-constructor)
  Value(std::string v) : v_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT(google-explicit-constructor)
  Value(bool v) : v_(v) {}                  // NOLINT(google-explicit-constructor)

  static Value null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }

  DataType type() const {
    switch (v_.index()) {
      case 1: return DataType::kInt64;
      case 2: return DataType::kFloat64;
      case 3: return DataType::kString;
      case 4: return DataType::kBool;
      default: return DataType::kNull;
    }
  }

  std::int64_t as_int() const {
    if (auto* p = std::get_if<std::int64_t>(&v_)) return *p;
    if (auto* p = std::get_if<double>(&v_)) return static_cast<std::int64_t>(*p);
    if (auto* p = std::get_if<bool>(&v_)) return *p ? 1 : 0;
    throw std::runtime_error("Value: not convertible to int");
  }

  double as_double() const {
    if (auto* p = std::get_if<double>(&v_)) return *p;
    if (auto* p = std::get_if<std::int64_t>(&v_)) return static_cast<double>(*p);
    if (auto* p = std::get_if<bool>(&v_)) return *p ? 1.0 : 0.0;
    throw std::runtime_error("Value: not convertible to double");
  }

  const std::string& as_string() const {
    if (auto* p = std::get_if<std::string>(&v_)) return *p;
    throw std::runtime_error("Value: not a string");
  }

  bool as_bool() const {
    if (auto* p = std::get_if<bool>(&v_)) return *p;
    if (auto* p = std::get_if<std::int64_t>(&v_)) return *p != 0;
    throw std::runtime_error("Value: not convertible to bool");
  }

  bool operator==(const Value& o) const { return v_ == o.v_; }
  bool operator!=(const Value& o) const { return !(*this == o); }

  /// Total order with nulls first; numeric types compare numerically.
  bool operator<(const Value& o) const;

  std::string to_string() const;

 private:
  std::variant<std::monostate, std::int64_t, double, std::string, bool> v_;
};

}  // namespace oda::sql
