#include "sql/ops.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace oda::sql {

Table filter(const Table& t, const ExprPtr& pred) {
  std::vector<std::size_t> keep;
  keep.reserve(t.num_rows() / 4);
  for (std::size_t i = 0; i < t.num_rows(); ++i) {
    const Value v = pred->eval(t, i);
    if (!v.is_null() && v.as_bool()) keep.push_back(i);
  }
  return t.take(keep);
}

Table project(const Table& t, std::span<const std::string> columns) {
  Schema schema;
  std::vector<std::size_t> src;
  src.reserve(columns.size());
  for (const auto& name : columns) {
    const std::size_t i = t.col_index(name);
    schema.add(t.schema().field(i));
    src.push_back(i);
  }
  Table out(schema);
  out.reserve(t.num_rows());
  std::vector<Value> row(columns.size());
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    for (std::size_t c = 0; c < src.size(); ++c) row[c] = t.column(src[c]).get(r);
    out.append_row(row);
  }
  return out;
}

Table project(const Table& t, std::initializer_list<std::string> columns) {
  return project(t, std::span<const std::string>(columns.begin(), columns.size()));
}

Table with_column(const Table& t, const std::string& name, DataType type, const ExprPtr& e) {
  Schema schema = t.schema();
  schema.add({name, type});
  Table out(schema);
  out.reserve(t.num_rows());
  std::vector<Value> row(schema.size());
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    for (std::size_t c = 0; c + 1 < schema.size(); ++c) row[c] = t.column(c).get(r);
    row.back() = e->eval(t, r);
    out.append_row(row);
  }
  return out;
}

Table rename_column(const Table& t, const std::string& from, const std::string& to) {
  std::vector<Field> fields = t.schema().fields();
  const std::size_t i = t.col_index(from);
  fields[i].name = to;
  Table out{Schema(std::move(fields))};
  // Copy data via row append (columns are identical types).
  std::vector<Value> row(t.num_columns());
  out.reserve(t.num_rows());
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    for (std::size_t c = 0; c < t.num_columns(); ++c) row[c] = t.column(c).get(r);
    out.append_row(row);
  }
  return out;
}

Table sort_by(const Table& t, std::span<const SortKey> keys) {
  std::vector<std::size_t> key_cols;
  key_cols.reserve(keys.size());
  for (const auto& k : keys) key_cols.push_back(t.col_index(k.column));

  std::vector<std::size_t> idx(t.num_rows());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    for (std::size_t k = 0; k < keys.size(); ++k) {
      const Value va = t.column(key_cols[k]).get(a);
      const Value vb = t.column(key_cols[k]).get(b);
      if (va < vb) return keys[k].ascending;
      if (vb < va) return !keys[k].ascending;
    }
    return false;
  });
  return t.take(idx);
}

Table sort_by(const Table& t, std::initializer_list<SortKey> keys) {
  return sort_by(t, std::span<const SortKey>(keys.begin(), keys.size()));
}

Table limit(const Table& t, std::size_t n) {
  std::vector<std::size_t> idx(std::min(n, t.num_rows()));
  std::iota(idx.begin(), idx.end(), 0);
  return t.take(idx);
}

void encode_key(const Table& t, std::span<const std::size_t> key_cols, std::size_t i, std::string& out) {
  out.clear();
  for (std::size_t c : key_cols) {
    const Column& col = t.column(c);
    if (col.is_null(i)) {
      out.push_back('\x00');
      continue;
    }
    switch (col.type()) {
      case DataType::kInt64: {
        out.push_back('\x01');
        const std::int64_t v = col.int_at(i);
        out.append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kFloat64: {
        out.push_back('\x02');
        const double v = col.double_at(i);
        out.append(reinterpret_cast<const char*>(&v), sizeof(v));
        break;
      }
      case DataType::kString: {
        out.push_back('\x03');
        const std::string& s = col.str_at(i);
        const std::uint32_t n = static_cast<std::uint32_t>(s.size());
        out.append(reinterpret_cast<const char*>(&n), sizeof(n));
        out.append(s);
        break;
      }
      case DataType::kBool:
        out.push_back(col.bool_at(i) ? '\x05' : '\x04');
        break;
      case DataType::kNull:
        out.push_back('\x00');
        break;
    }
  }
}

Table distinct(const Table& t, std::span<const std::string> keys) {
  std::vector<std::size_t> key_cols;
  key_cols.reserve(keys.size());
  for (const auto& k : keys) key_cols.push_back(t.col_index(k));

  std::unordered_map<std::string, bool> seen;
  std::vector<std::size_t> keep;
  std::string buf;
  for (std::size_t i = 0; i < t.num_rows(); ++i) {
    encode_key(t, key_cols, i, buf);
    if (seen.emplace(buf, true).second) keep.push_back(i);
  }
  return t.take(keep);
}

Table hash_join(const Table& left, const Table& right, std::span<const std::string> keys, JoinType type,
                const std::string& suffix) {
  std::vector<std::size_t> lkeys, rkeys;
  for (const auto& k : keys) {
    lkeys.push_back(left.col_index(k));
    rkeys.push_back(right.col_index(k));
  }

  // Output schema: all left columns + right non-key columns (renamed on
  // collision).
  Schema schema = left.schema();
  std::vector<std::size_t> right_cols;
  for (std::size_t c = 0; c < right.num_columns(); ++c) {
    if (std::find(rkeys.begin(), rkeys.end(), c) != rkeys.end()) continue;
    Field f = right.schema().field(c);
    if (schema.contains(f.name)) f.name += suffix;
    schema.add(f);
    right_cols.push_back(c);
  }

  // Build side: right.
  std::unordered_map<std::string, std::vector<std::size_t>> build;
  build.reserve(right.num_rows());
  std::string buf;
  for (std::size_t i = 0; i < right.num_rows(); ++i) {
    encode_key(right, rkeys, i, buf);
    build[buf].push_back(i);
  }

  Table out(schema);
  std::vector<Value> row(schema.size());
  for (std::size_t i = 0; i < left.num_rows(); ++i) {
    encode_key(left, lkeys, i, buf);
    const auto it = build.find(buf);
    if (it == build.end()) {
      if (type == JoinType::kLeft) {
        std::size_t c = 0;
        for (; c < left.num_columns(); ++c) row[c] = left.column(c).get(i);
        for (std::size_t rc = 0; rc < right_cols.size(); ++rc) row[c + rc] = Value::null();
        out.append_row(row);
      }
      continue;
    }
    for (std::size_t j : it->second) {
      std::size_t c = 0;
      for (; c < left.num_columns(); ++c) row[c] = left.column(c).get(i);
      for (std::size_t rc = 0; rc < right_cols.size(); ++rc) row[c + rc] = right.column(right_cols[rc]).get(j);
      out.append_row(row);
    }
  }
  return out;
}

Table hash_join(const Table& left, const Table& right, std::initializer_list<std::string> keys, JoinType type,
                const std::string& suffix) {
  return hash_join(left, right, std::span<const std::string>(keys.begin(), keys.size()), type, suffix);
}

Table concat(std::span<const Table> tables) {
  if (tables.empty()) return Table{};
  Table out(tables.front().schema());
  for (const auto& t : tables) out.append_table(t);
  return out;
}

}  // namespace oda::sql
