// The shared-nothing sharded execution engine — the role Spark's
// micro-batch scheduler plays in the paper's STREAM→LAKE pipelines
// (Sec V-B), where 4.2–4.5 TB/day is sustainable only because consumer
// groups fan partitions out across cores.
//
// Ownership model (the DCDB/ALICE shape: shared-nothing slices over
// refcounted transport buffers):
//
//  * Every query gets a team of long-lived workers. Each worker holds one
//    long-lived stream::GroupMember whose round-robin assignment IS the
//    worker's owned partition set — no per-round re-fan-out, no shared
//    thread pool, and (via the broker's lock-free generation cell) no
//    broker mutex on the poll hot path.
//
//  * Each partition is a "lane": its own operator chain (built from
//    operator factories, so stateful operators shard by PARTITION, never
//    by worker) plus a handoff slot for pre-committed results. A worker
//    runs its owned lanes end-to-end — fetch_view → decode → operate —
//    touching nothing another worker touches.
//
//  * Workers meet the driver only at generation barriers. One micro-batch
//    ("generation") is: fetch phase (retryable under the "engine.pull"
//    seam), decode phase, a global watermark reduction, operate phase,
//    then a single-threaded merge in ascending partition order into the
//    sinks, followed by the usual sinks→operators→offsets commit.
//
// Why committed sink output is byte-identical at ANY worker count (the
// crown-jewel invariant): per-partition fetch budget is a function of
// batch size and partition count only; lanes (and their operator state)
// are keyed by partition, not worker; the watermark is reduced globally
// before any lane operates; and the merge orders by (partition, offset).
// Worker count decides only which thread runs a lane — invisible in the
// output, including under injected faults (a failed generation rolls
// back every lane and replays identically from committed offsets).
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/faults.hpp"
#include "observe/flight.hpp"
#include "observe/metrics.hpp"
#include "observe/trace.hpp"
#include "pipeline/operator.hpp"
#include "pipeline/query.hpp"
#include "pipeline/source_sink.hpp"
#include "stream/broker.hpp"

namespace oda::engine {

/// Partition-ownership knobs. Today ownership is always strict round-
/// robin via the consumer group; the config carries the expected scale so
/// misconfigurations fail at validate() instead of deep in a run.
struct OwnershipConfig {
  /// Expected partition count of the topics this engine will own. When
  /// set (> 0), EngineConfig::validate() rejects worker>partition
  /// oversubscription at configuration time, and add_query() rejects a
  /// topic whose real partition count differs. 0 = derive per query
  /// (workers silently clamp to each topic's partition count).
  std::size_t partitions = 0;

  OwnershipConfig& with_partitions(std::size_t n) {
    partitions = n;
    return *this;
  }
};

struct EngineConfig {
  /// Worker threads per query team. 0 = hardware concurrency. Teams are
  /// clamped to [1, num_partitions] per query — an extra member would own
  /// no partitions and just churn the group.
  std::size_t workers = 0;
  /// Micro-batches one query may run per scheduling round before the
  /// engine re-checks the other queries (keeps a deep topic from
  /// starving downstream queries in a chain).
  std::size_t max_batches_per_round = 64;
  OwnershipConfig ownership;
  /// Per-ring capacity of the flight recorder (events). The engine keeps
  /// one ring per worker plus a driver ring; 0 disables recording.
  /// Recording is out-of-band: committed sink bytes are byte-identical
  /// with any capacity, including 0 (tests/flight_test.cpp proves it).
  std::size_t flight_capacity = 4096;

  // Fluent construction:
  //   EngineConfig{}.with_workers(4).with_ownership(
  //       OwnershipConfig{}.with_partitions(8)).
  EngineConfig& with_workers(std::size_t n) {
    workers = n;
    return *this;
  }
  EngineConfig& with_max_batches_per_round(std::size_t n) {
    max_batches_per_round = n;
    return *this;
  }
  EngineConfig& with_ownership(OwnershipConfig o) {
    ownership = o;
    return *this;
  }
  EngineConfig& with_flight(std::size_t capacity_per_ring) {
    flight_capacity = capacity_per_ring;
    return *this;
  }

  /// Throws std::invalid_argument on nonsense: 0 batches per round, or —
  /// when an ownership partition count is declared — more workers than
  /// partitions (oversubscribed workers would own nothing; declaring the
  /// scale means you want that caught, not clamped). Called by the
  /// Engine constructor.
  void validate() const;
};

/// Cumulative scheduling totals (monitoring / benches).
struct EngineStats {
  std::uint64_t rounds = 0;
  std::uint64_t batches = 0;   ///< committed micro-batches across queries
  std::uint64_t rows = 0;      ///< rows pulled across queries
  double wall_seconds = 0.0;   ///< time spent inside run_until_caught_up
};

/// Named-field source description for add_query(). The query's worker
/// team builds its own GroupMembers from this spec — one per worker,
/// long-lived, each owning a disjoint partition set.
struct SourceSpec {
  stream::Broker* broker = nullptr;
  std::string topic;
  std::string group;
  pipeline::RecordDecoder decoder;
  chaos::RetryPolicy retry{};
};

/// Factory for one lane's instance of an operator. The engine builds one
/// operator chain per PARTITION (not per worker), so stateful operators
/// shard by the same key the broker already partitions by — worker count
/// and rebalances never move operator state between lanes.
using OperatorFactory = std::function<pipeline::OperatorPtr()>;

/// Cumulative wall-seconds per engine phase, aggregated across a query's
/// workers (fetch/decode/operate/barrier) and its driver (barrier wait
/// for stragglers, merge, commit). This is the phase attribution behind
/// the `engine.phase.*_pct` gauges and BENCH_micro_engine.json's
/// time-share columns: it says WHERE the scaling-efficiency numbers go.
struct PhaseProfile {
  double fetch_s = 0.0;
  double decode_s = 0.0;
  double operate_s = 0.0;
  double barrier_s = 0.0;  ///< stall: waiting at generation barriers
  double merge_s = 0.0;    ///< driver: deterministic merge + sink writes
  double commit_s = 0.0;   ///< driver: sinks → lanes → offsets commit

  double accounted_s() const {
    return fetch_s + decode_s + operate_s + barrier_s + merge_s + commit_s;
  }
  /// Share of accounted time, in percent (0 when nothing is accounted).
  double pct(double phase_s) const {
    const double total = accounted_s();
    return total > 0.0 ? phase_s / total * 100.0 : 0.0;
  }
};

/// Per-worker snapshot for monitoring (owned partitions, handoff depth).
struct WorkerStats {
  std::size_t worker = 0;
  bool alive = true;
  std::size_t owned_partitions = 0;
  std::uint64_t rows_fetched = 0;  ///< rows this worker pulled (pre-commit)
  std::uint64_t handoffs = 0;      ///< lane results handed to the merge point
};

/// One sharded pipeline: a worker team owning a topic's partitions
/// end-to-end, per-partition operator chains, and a deterministic merge
/// point feeding the sinks. Construction happens through
/// Engine::add_query(); stages chain fluently like StreamingQuery's.
///
/// run_once() is a transaction with exactly the StreamingQuery contract:
/// sinks begin before the pull; any failure (worker exception, injected
/// chaos fault, legacy FaultPlan) rolls back every lane's operator
/// state and sink output and reseeks the members, so the replay
/// re-produces byte-identical output; a batch that keeps failing is
/// dead-lettered after max_retries. Never throws on infrastructure
/// faults. Drive it from ONE thread (the engine's scheduler does);
/// kill_worker() and stats accessors are driver-thread calls too.
class Query {
 public:
  Query(pipeline::QueryConfig config, const SourceSpec& spec, std::size_t workers,
        observe::FlightRecorder* flight = nullptr);
  ~Query();

  Query(const Query&) = delete;
  Query& operator=(const Query&) = delete;

  /// Chainable per-lane stage registration (in execution order). The
  /// factory runs once per partition, immediately.
  Query& add_operator(const OperatorFactory& factory);
  Query& add_transform(std::string name, storage::DataClass out_class,
                       std::function<sql::Table(const sql::Table&)> fn);
  Query& add_sink(std::unique_ptr<pipeline::Sink> sink);
  /// Keep a non-owning sink (owned by caller, e.g. a LAKE shared sink).
  Query& add_sink_ref(pipeline::Sink& sink);

  /// Process one generation (micro-batch). Returns rows pulled (0 =
  /// caught up, or the pull failed after retries). See class comment for
  /// the transaction contract.
  std::size_t run_once();

  /// Drain until the members are caught up; returns total rows processed.
  std::uint64_t run_until_caught_up(std::size_t max_batches = SIZE_MAX);

  /// Flush stateful lane operators through the remaining stages to the
  /// sinks, in ascending partition order (end of stream).
  void finalize();

  const pipeline::QueryMetrics& metrics() const { return metrics_; }
  const std::string& name() const { return config_.name; }
  common::TimePoint watermark() const { return watermark_; }
  void set_fault_plan(pipeline::FaultPlan plan) { faults_ = plan; }
  const chaos::RetryStats& retry_stats() const { return retrier_.stats(); }

  std::int64_t lag() const;
  std::size_t num_partitions() const { return lanes_.size(); }
  /// Workers still alive in the team (kill_worker shrinks this).
  std::size_t num_workers() const;
  std::size_t team_size() const { return workers_.size(); }

  /// Kill one worker: its member leaves the group (generation bump), the
  /// survivors observe the new generation through the broker's lock-free
  /// cell on their next fetch and absorb the freed partitions. Any
  /// in-flight positions the dead worker held are voided by the fenced
  /// commit. Driver-thread call, between generations — the test hook for
  /// the ownership-rebalance story.
  void kill_worker(std::size_t w);

  std::vector<WorkerStats> worker_stats() const;

  /// Cumulative per-phase wall time across the team. Driver-thread call
  /// between generations (same contract as worker_stats()).
  PhaseProfile phase_profile() const;

 private:
  enum class Phase : std::uint8_t { kIdle = 0, kFetch, kDecode, kOperate, kExit };

  /// One partition's shard: operator chain + handoff slot. A lane is
  /// touched by exactly one worker during a phase (disjoint ownership)
  /// and by the driver between barriers.
  struct Lane {
    std::vector<pipeline::OperatorPtr> ops;
    stream::FetchView views;     ///< fetch-phase handoff
    sql::Table table;            ///< decode/operate-phase handoff
    std::size_t pulled = 0;
    common::TimePoint max_ts = INT64_MIN;
    common::TimePoint min_ts = INT64_MAX;  ///< oldest event ts (e2e latency)
    /// Ops began this generation — commit/rollback are strictly paired
    /// with begin (an unpaired rollback would restore a stale snapshot).
    bool began = false;
    // Per-generation stage accounting, merged by the driver.
    std::vector<double> stage_wall;
    std::vector<std::uint64_t> stage_rows_in;
    std::vector<std::uint64_t> stage_rows_out;
  };

  struct Worker {
    std::unique_ptr<stream::GroupMember> member;
    std::thread thread;  ///< not started for worker 0 (runs on the driver)
    std::atomic<bool> die{false};
    bool alive = true;
    std::exception_ptr error;  ///< set during a phase, read after the barrier
    std::atomic<std::uint64_t> rows_fetched{0};
    std::atomic<std::uint64_t> handoffs{0};
    observe::Gauge* obs_owned = nullptr;
    observe::Gauge* obs_handoff = nullptr;
    // Flight-profiler accounting, worker-owned: written only during a
    // phase (or, for kBarrier, right after waking), read by the driver
    // between barriers — the phase_mu_ handshake is the fence.
    std::array<double, observe::kFlightPhases> phase_wall{};
    std::uint64_t last_phase_rows = 0;     ///< rows handled in the last phase
    std::size_t last_owned = SIZE_MAX;     ///< owned-partition count last fetch
  };

  // --- generation protocol (driver side) --------------------------------
  void run_phase(Phase p);
  void run_phase_on(std::size_t w, Phase p);
  void worker_loop(std::size_t w);
  /// Reset lanes + fetch phase; returns rows pulled. One attempt of the
  /// "engine.pull" retry seam.
  std::size_t fetch_generation();
  /// Rethrow the first worker error recorded during the last phase (all
  /// workers are quiescent at the barrier, so the retry path may reseek).
  void check_worker_errors();
  void seek_all_members();
  void commit_all_members();
  void commit_all_lanes();
  void rollback_all_lanes();
  sql::Table merge_lanes();

  // --- worker side (inside a phase; touches owned lanes only) -----------
  void fetch_lanes(std::size_t w);
  void decode_lanes(std::size_t w);
  void operate_lanes(std::size_t w);

  // --- flight recorder / phase profiler ----------------------------------
  /// Worker w's ring (ring 0 is the driver's). Teams share the engine's
  /// recorder; queries run one generation at a time, so ring 1+w is only
  /// ever written by the thread currently running worker w.
  std::size_t flight_ring(std::size_t w) const { return 1 + w; }
  void flight_emit(std::size_t ring, observe::FlightEventType type,
                   observe::FlightPhase phase = observe::FlightPhase::kNone,
                   std::uint64_t arg = 0, std::uint32_t label = 0) {
    if (flight_ != nullptr) flight_->emit(ring, type, phase, arg, label);
  }
  void publish_phase_gauges();

  pipeline::QueryConfig config_;
  stream::Broker* broker_ = nullptr;
  std::string topic_;
  pipeline::RecordDecoder decoder_;
  chaos::Retrier retrier_;
  std::size_t budget_ = 1;  ///< per-partition fetch cap: f(batch size, P) only

  std::vector<Lane> lanes_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<pipeline::Sink>> owned_sinks_;
  std::vector<pipeline::Sink*> sinks_;

  // Barrier state. phase_seq_ bumps once per phase; workers wait on it,
  // the driver waits for remaining_ to drain. The mutex handshake is the
  // happens-before edge that lets the driver touch lanes exclusively
  // between barriers and workers touch owned lanes during one.
  std::mutex phase_mu_;
  std::condition_variable phase_cv_;  ///< workers wait here
  std::condition_variable done_cv_;   ///< the driver waits here
  std::uint64_t phase_seq_ = 0;
  Phase phase_ = Phase::kIdle;
  std::size_t remaining_ = 0;
  std::size_t live_threads_ = 0;  ///< worker threads participating in barriers
  observe::TraceContext batch_ctx_;     ///< driver → workers, set before a phase
  common::TimePoint op_watermark_ = 0;  ///< driver → workers, set before operate

  pipeline::QueryMetrics metrics_;
  common::TimePoint watermark_ = INT64_MIN;
  common::TimePoint watermark_snapshot_ = INT64_MIN;
  pipeline::FaultPlan faults_;
  std::size_t consecutive_failures_ = 0;

  // Flight recorder (nullable = recording off) + driver-side phase
  // accounting (barrier wait for stragglers, merge, commit).
  observe::FlightRecorder* flight_ = nullptr;
  std::array<double, observe::kFlightPhases> driver_wall_{};
  std::uint32_t label_query_ = 0;       ///< interned query name
  std::uint32_t label_generation_ = 0;  ///< interned "generation"
  std::uint32_t label_dead_letter_ = 0; ///< interned "dead-letter"

  observe::Counter* obs_batches_ = nullptr;
  observe::Counter* obs_failures_ = nullptr;
  observe::Counter* obs_skipped_ = nullptr;
  observe::Counter* obs_rows_ = nullptr;
  observe::Histogram* obs_batch_seconds_ = nullptr;
  observe::Gauge* obs_watermark_ = nullptr;
  /// End-to-end record latency: produce-time event stamp → sink commit,
  /// in *virtual* seconds (deterministic, worker-count invariant). One
  /// sample per committed generation: the oldest record's latency.
  observe::Histogram* obs_e2e_ = nullptr;
  /// Cumulative per-phase time share (engine.phase.*_pct{query=...}),
  /// republished after every committed generation.
  std::array<observe::Gauge*, observe::kFlightPhases> obs_phase_pct_{};
  /// Per-worker fetched-row accounting on the hot path: each worker bumps
  /// its own cache-line slot; scrapes merge (observe::ShardedCounter).
  observe::ShardedCounter* obs_worker_rows_ = nullptr;
  std::string batch_span_name_;

  friend class Engine;
};

/// Multi-query scheduler. Each query owns its worker team; the engine
/// runs queries in rounds (sequentially — parallelism lives inside each
/// query's team now) until no query makes progress, so multi-hop chains
/// (bronze → silver → gold over broker topics) drain to quiescence.
class Engine {
 public:
  explicit Engine(EngineConfig config = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Configured team size (0 resolved to hardware concurrency). Actual
  /// teams clamp to each query's partition count.
  std::size_t workers() const { return workers_; }

  /// Construct a sharded query owned by the engine; returns it for stage
  /// chaining. The spec's broker must outlive the engine (members
  /// deregister on destruction). Throws std::invalid_argument when the
  /// ownership config declares a partition count and the topic's real
  /// count differs.
  Query& add_query(pipeline::QueryConfig config, SourceSpec spec);

  std::size_t num_queries() const { return queries_.size(); }
  Query& query(std::size_t i) { return *queries_.at(i); }

  /// Run scheduling rounds until every query is caught up (a full round
  /// makes no progress and all members report zero lag). Returns total
  /// rows processed. Rounds visit queries in add order; each query runs
  /// up to max_batches_per_round generations per round.
  std::uint64_t run_until_caught_up(std::size_t max_rounds = SIZE_MAX);

  EngineStats stats() const;

  /// Per-worker ownership/handoff snapshot across all queries, for the
  /// monitor's watch_engine view. Driver-thread call.
  std::vector<std::pair<std::string, WorkerStats>> worker_info() const;

  /// The engine's flight recorder (nullptr when flight_capacity == 0).
  /// Ring 0 is the driver; ring 1+w is worker w of whichever query's
  /// team is currently running a generation (queries run sequentially).
  observe::FlightRecorder* flight() { return flight_.get(); }
  const observe::FlightRecorder* flight() const { return flight_.get(); }

  /// True when something raised the dump latch (chaos fault surfaced as
  /// a query error, SLO breach via the installed-recorder hook, ...).
  bool flight_dump_requested() const;

  /// Snapshot every ring into one ordered timeline. `trigger` defaults
  /// to a pending dump-request reason (or "explicit"). Driver-thread
  /// call between generations; returns an empty dump when recording is
  /// off. Export with observe::flight_to_json / flight_to_chrome_json.
  observe::FlightDump dump_flight(std::string trigger = {});

 private:
  EngineConfig config_;
  std::size_t workers_ = 1;
  // Declared before queries_ on purpose: queries join their worker
  // threads in ~Query, and those threads emit flight events until the
  // very last barrier wake — the recorder must outlive them.
  std::unique_ptr<observe::FlightRecorder> flight_;
  std::vector<std::unique_ptr<Query>> queries_;

  mutable std::mutex stats_mu_;
  EngineStats stats_;

  observe::Gauge* obs_workers_ = nullptr;
  observe::Gauge* obs_queries_ = nullptr;
  observe::Counter* obs_rounds_ = nullptr;
  observe::Counter* obs_batches_ = nullptr;
  observe::Counter* obs_rows_ = nullptr;
};

}  // namespace oda::engine
