// The partition-parallel execution engine — the role Spark's micro-batch
// scheduler plays in the paper's STREAM→LAKE pipelines (Sec V-B), where
// 4.2–4.5 TB/day is sustainable only because consumer groups fan
// partitions out across cores.
//
// Two pieces:
//
//  * ParallelBrokerSource — a pipeline::Source whose poll fans out across
//    W consumer-group members on a shared thread pool, one member per
//    worker, each fetching its assigned partitions. Results merge
//    deterministically by (partition, offset), so a batch's contents are
//    a pure function of the group's committed offsets — independent of
//    worker count, scheduling order, or which worker owns which
//    partition. That invariant is what lets the golden-run / exactly-once
//    guarantees survive workers > 1: a workers=4 run commits byte-identical
//    sink output to a workers=1 run, including under injected faults
//    (a failed batch rolls back and replays identically).
//
//  * Engine — schedules N StreamingQuery pipelines in rounds: each round
//    runs every query on its own driver thread (queries are independent
//    state machines), with all queries' partition fetches sharing the
//    engine's worker pool. Rounds repeat until no query makes progress,
//    so multi-hop chains (bronze → silver → gold over broker topics)
//    drain to quiescence.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/faults.hpp"
#include "common/thread_pool.hpp"
#include "observe/metrics.hpp"
#include "observe/trace.hpp"
#include "pipeline/query.hpp"
#include "pipeline/source_sink.hpp"
#include "stream/broker.hpp"

namespace oda::engine {

struct EngineConfig {
  /// Worker threads for partition fetches. 0 = hardware concurrency.
  std::size_t workers = 0;
  /// Micro-batches one query may run per scheduling round before the
  /// engine re-checks the other queries (keeps a deep topic from
  /// starving downstream queries in a chain).
  std::size_t max_batches_per_round = 64;

  // Fluent construction: EngineConfig{}.with_workers(4).
  EngineConfig& with_workers(std::size_t n) {
    workers = n;
    return *this;
  }
  EngineConfig& with_max_batches_per_round(std::size_t n) {
    max_batches_per_round = n;
    return *this;
  }

  /// Throws std::invalid_argument on nonsense (0 batches per round).
  /// Called by the Engine constructor.
  void validate() const;
};

/// Cumulative scheduling totals (monitoring / benches).
struct EngineStats {
  std::uint64_t rounds = 0;
  std::uint64_t batches = 0;   ///< committed micro-batches across queries
  std::uint64_t rows = 0;      ///< rows pulled across queries
  double wall_seconds = 0.0;   ///< time spent inside run_until_caught_up
};

/// Partition-parallel Source: W GroupMembers in one consumer group, polled
/// concurrently on the engine's pool, merged by (partition, offset).
///
/// Per pull, each member fetches up to max_records/P records per assigned
/// partition (at least 1), so batch composition depends only on committed
/// offsets and the partition count — not on W. The pull retries whole
/// ("engine.pull" seam): a faulted fetch may have advanced some members
/// partway, so every retry first restores all members to the group's
/// committed offsets, exactly like the single-threaded BrokerSource.
///
/// Worker fetches are traced as "engine.fetch" spans parented under the
/// calling query's batch span (the batch context travels to pool threads
/// explicitly), so a traced run shows the fan-out per micro-batch.
class ParallelBrokerSource final : public pipeline::Source {
 public:
  /// `workers` is clamped to [1, num_partitions] — extra members would
  /// own no partitions and just churn the group.
  ParallelBrokerSource(stream::Broker& broker, std::string topic, std::string group,
                       pipeline::RecordDecoder decoder, common::ThreadPool& pool,
                       std::size_t workers, chaos::RetryPolicy retry = {});

  sql::Table pull(std::size_t max_records) override;
  void commit() override;
  void rewind() override;
  std::int64_t lag() const override;
  observe::TraceContext incoming_trace() const override { return incoming_; }

  std::size_t num_members() const { return members_.size(); }
  const chaos::RetryStats& retry_stats() const { return retrier_.stats(); }

 private:
  /// One fan-out attempt: poll every member (member 0 inline on the
  /// caller, the rest on the pool), gather per-partition view batches.
  /// Throws the first worker fault after all workers finished (members
  /// must be quiescent before the retry path seeks them).
  std::vector<stream::PartitionBatchView> fan_out(std::size_t per_partition);

  stream::Broker& broker_;
  std::string topic_;
  common::ThreadPool& pool_;
  std::size_t num_partitions_ = 0;
  std::vector<std::unique_ptr<stream::GroupMember>> members_;
  pipeline::RecordDecoder decoder_;
  chaos::Retrier retrier_;
  observe::TraceContext incoming_;
};

/// Multi-query scheduler over a shared worker pool. Queries added to the
/// engine should use sources made by make_source() so their fetches
/// actually fan out; any pipeline::Source works, it just won't
/// parallelize.
class Engine {
 public:
  explicit Engine(EngineConfig config = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  std::size_t workers() const { return pool_.size(); }
  common::ThreadPool& pool() { return pool_; }

  /// A partition-parallel source reading `topic` through consumer group
  /// `group` with this engine's worker pool. The broker must outlive the
  /// engine (the source's group members deregister on destruction).
  std::unique_ptr<ParallelBrokerSource> make_source(stream::Broker& broker, std::string topic,
                                                    std::string group,
                                                    pipeline::RecordDecoder decoder,
                                                    chaos::RetryPolicy retry = {});

  /// Construct a query owned by the engine; returns it for stage chaining.
  pipeline::StreamingQuery& add_query(pipeline::QueryConfig config,
                                      std::unique_ptr<pipeline::Source> source);
  /// Schedule a caller-owned query (must outlive the engine's runs).
  void add_query_ref(pipeline::StreamingQuery& query);

  std::size_t num_queries() const { return queries_.size(); }
  pipeline::StreamingQuery& query(std::size_t i) { return *queries_.at(i); }

  /// Run scheduling rounds until every query is caught up (a full round
  /// makes no progress and all sources report zero lag). Returns total
  /// rows processed. Each round runs every query on its own driver
  /// thread, up to max_batches_per_round micro-batches each.
  std::uint64_t run_until_caught_up(std::size_t max_rounds = SIZE_MAX);

  EngineStats stats() const;

 private:
  EngineConfig config_;
  common::ThreadPool pool_;
  std::vector<std::unique_ptr<pipeline::StreamingQuery>> owned_queries_;
  std::vector<pipeline::StreamingQuery*> queries_;

  mutable std::mutex stats_mu_;
  EngineStats stats_;

  // Engine-level observability: gauges reflect the live configuration,
  // counters accumulate scheduling work (handles stable for process life).
  observe::Gauge* obs_workers_ = nullptr;
  observe::Gauge* obs_queries_ = nullptr;
  observe::Counter* obs_rounds_ = nullptr;
  observe::Counter* obs_batches_ = nullptr;
  observe::Counter* obs_rows_ = nullptr;
};

}  // namespace oda::engine
