#include "engine/engine.hpp"

#include <algorithm>
#include <exception>
#include <optional>
#include <stdexcept>

#include "common/stats.hpp"

namespace oda::engine {

using common::Stopwatch;

void EngineConfig::validate() const {
  if (max_batches_per_round == 0) {
    throw std::invalid_argument("EngineConfig: max_batches_per_round must be >= 1");
  }
  // Oversubscription is only an error when the caller DECLARED the scale:
  // an explicit worker count above an explicit partition count means every
  // extra worker owns nothing. workers == 0 (auto) still clamps per query.
  if (ownership.partitions != 0 && workers > ownership.partitions) {
    throw std::invalid_argument(
        "EngineConfig: " + std::to_string(workers) + " workers oversubscribe " +
        std::to_string(ownership.partitions) + " partitions (workers must be <= partitions)");
  }
}

// ---------------------------------------------------------------------------
// Query: construction and stage registration
// ---------------------------------------------------------------------------

Query::Query(pipeline::QueryConfig config, const SourceSpec& spec, std::size_t workers,
             observe::FlightRecorder* flight)
    : config_(std::move(config)),
      broker_(spec.broker),
      topic_(spec.topic),
      decoder_(spec.decoder),
      retrier_(spec.retry, /*seed=*/0xe2619eull),
      flight_(flight) {
  config_.validate();
  if (!broker_) throw std::invalid_argument("SourceSpec: broker must be set");
  if (!decoder_) throw std::invalid_argument("SourceSpec: decoder must be set");
  const std::size_t num_partitions = broker_->topic(topic_).num_partitions();
  lanes_.resize(num_partitions);
  // Per-partition fetch budget: a function of batch size and partition
  // count ONLY — never of worker count. This is one leg of the
  // byte-identity invariant.
  budget_ = std::max<std::size_t>(1, config_.max_records_per_batch / num_partitions);

  auto& reg = observe::default_registry();
  const observe::Labels labels{{"query", config_.name}};
  obs_batches_ = reg.counter("pipeline.batches", labels);
  obs_failures_ = reg.counter("pipeline.batch.failures", labels);
  obs_skipped_ = reg.counter("pipeline.batches.skipped", labels);
  obs_rows_ = reg.counter("pipeline.rows.ingested", labels);
  obs_batch_seconds_ = reg.histogram("pipeline.batch.seconds", labels);
  obs_watermark_ = reg.gauge("pipeline.watermark", labels);
  obs_worker_rows_ = reg.sharded_counter("engine.worker.rows", labels);
  obs_e2e_ = reg.histogram("stream.e2e_latency", labels);
  using observe::FlightPhase;
  obs_phase_pct_[static_cast<std::size_t>(FlightPhase::kFetch)] =
      reg.gauge("engine.phase.fetch_pct", labels);
  obs_phase_pct_[static_cast<std::size_t>(FlightPhase::kDecode)] =
      reg.gauge("engine.phase.decode_pct", labels);
  obs_phase_pct_[static_cast<std::size_t>(FlightPhase::kOperate)] =
      reg.gauge("engine.phase.operate_pct", labels);
  obs_phase_pct_[static_cast<std::size_t>(FlightPhase::kBarrier)] =
      reg.gauge("engine.phase.barrier_pct", labels);
  obs_phase_pct_[static_cast<std::size_t>(FlightPhase::kMerge)] =
      reg.gauge("engine.phase.merge_pct", labels);
  obs_phase_pct_[static_cast<std::size_t>(FlightPhase::kCommit)] =
      reg.gauge("engine.phase.commit_pct", labels);
  if (flight_ != nullptr) {
    label_query_ = flight_->intern(config_.name);
    label_generation_ = flight_->intern("generation");
    label_dead_letter_ = flight_->intern("dead-letter");
  }
  batch_span_name_ = "query." + config_.name + ".batch";

  const std::size_t team = std::clamp<std::size_t>(workers, 1, num_partitions);
  workers_.reserve(team);
  for (std::size_t i = 0; i < team; ++i) {
    auto wk = std::make_unique<Worker>();
    wk->member = std::make_unique<stream::GroupMember>(*broker_, spec.group, topic_);
    const observe::Labels wl{{"query", config_.name}, {"worker", std::to_string(i)}};
    wk->obs_owned = reg.gauge("engine.worker.owned_partitions", wl);
    wk->obs_handoff = reg.gauge("engine.worker.handoff", wl);
    workers_.push_back(std::move(wk));
  }
  // Worker 0 shares the driver thread (one worker's lanes cost no
  // handoff, and a team of 1 never touches the barrier machinery).
  live_threads_ = team - 1;
  for (std::size_t i = 1; i < team; ++i) {
    workers_[i]->thread = std::thread([this, i] { worker_loop(i); });
  }
}

Query::~Query() {
  {
    std::lock_guard lk(phase_mu_);
    phase_ = Phase::kExit;
    ++phase_seq_;
    phase_cv_.notify_all();
  }
  for (auto& wk : workers_) {
    if (wk->thread.joinable()) wk->thread.join();
  }
}

Query& Query::add_operator(const OperatorFactory& factory) {
  for (Lane& lane : lanes_) {
    lane.ops.push_back(factory());
    lane.stage_wall.push_back(0.0);
    lane.stage_rows_in.push_back(0);
    lane.stage_rows_out.push_back(0);
  }
  pipeline::StageMetrics sm;
  sm.name = lanes_.front().ops.back()->name();
  sm.output_class = lanes_.front().ops.back()->output_class();
  metrics_.stages.push_back(std::move(sm));
  return *this;
}

Query& Query::add_transform(std::string name, storage::DataClass out_class,
                            std::function<sql::Table(const sql::Table&)> fn) {
  return add_operator([name = std::move(name), out_class, fn = std::move(fn)] {
    return std::make_unique<pipeline::TransformOp>(name, out_class, fn);
  });
}

Query& Query::add_sink(std::unique_ptr<pipeline::Sink> sink) {
  sinks_.push_back(sink.get());
  owned_sinks_.push_back(std::move(sink));
  return *this;
}

Query& Query::add_sink_ref(pipeline::Sink& sink) {
  sinks_.push_back(&sink);
  return *this;
}

// ---------------------------------------------------------------------------
// Query: generation barriers
// ---------------------------------------------------------------------------

void Query::worker_loop(std::size_t w) {
  using observe::FlightEventType;
  using observe::FlightPhase;
  Worker& wk = *workers_[w];
  std::uint64_t seen = 0;
  for (;;) {
    Phase p;
    // The wait below is the worker's stall: barrier skew while teammates
    // finish a phase, plus idle time between generations. The flight
    // recorder brackets it as a kBarrier phase so the timeline shows
    // where a generation's wall time actually went.
    flight_emit(flight_ring(w), FlightEventType::kPhaseBegin, FlightPhase::kBarrier);
    Stopwatch idle_sw;
    {
      std::unique_lock lk(phase_mu_);
      phase_cv_.wait(lk, [&] { return phase_seq_ != seen || wk.die.load(std::memory_order_relaxed); });
      if (wk.die.load(std::memory_order_relaxed)) return;
      seen = phase_seq_;
      p = phase_;
    }
    const double waited = idle_sw.elapsed_seconds();
    flight_emit(flight_ring(w), FlightEventType::kPhaseEnd, FlightPhase::kBarrier);
    if (p == Phase::kExit) return;
    wk.phase_wall[static_cast<std::size_t>(FlightPhase::kBarrier)] += waited;
    run_phase_on(w, p);
    {
      std::lock_guard lk(phase_mu_);
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }
}

void Query::run_phase(Phase p) {
  using observe::FlightEventType;
  using observe::FlightPhase;
  {
    std::lock_guard lk(phase_mu_);
    phase_ = p;
    ++phase_seq_;
    remaining_ = live_threads_;
    phase_cv_.notify_all();
  }
  run_phase_on(0, p);
  // Driver-side barrier: wait for the straggling workers to drain. With
  // a team of one (live_threads_ == 0) the predicate is already true and
  // the bracket collapses to ~0.
  flight_emit(0, FlightEventType::kPhaseBegin, FlightPhase::kBarrier);
  Stopwatch wait_sw;
  {
    std::unique_lock lk(phase_mu_);
    done_cv_.wait(lk, [&] { return remaining_ == 0; });
  }
  driver_wall_[static_cast<std::size_t>(FlightPhase::kBarrier)] += wait_sw.elapsed_seconds();
  flight_emit(0, FlightEventType::kPhaseEnd, FlightPhase::kBarrier);
}

namespace {

observe::FlightPhase to_flight_phase(std::uint8_t p) {
  switch (p) {
    case 1: return observe::FlightPhase::kFetch;    // Phase::kFetch
    case 2: return observe::FlightPhase::kDecode;   // Phase::kDecode
    case 3: return observe::FlightPhase::kOperate;  // Phase::kOperate
    default: return observe::FlightPhase::kNone;
  }
}

}  // namespace

void Query::run_phase_on(std::size_t w, Phase p) {
  using observe::FlightEventType;
  Worker& wk = *workers_[w];
  if (!wk.alive) return;
  const observe::FlightPhase fp = to_flight_phase(static_cast<std::uint8_t>(p));
  wk.last_phase_rows = 0;
  flight_emit(flight_ring(w), FlightEventType::kPhaseBegin, fp);
  Stopwatch sw;
  try {
    switch (p) {
      case Phase::kFetch: fetch_lanes(w); break;
      case Phase::kDecode: decode_lanes(w); break;
      case Phase::kOperate: operate_lanes(w); break;
      default: break;
    }
  } catch (const std::exception& e) {
    // Held, not thrown: the barrier must drain (every worker quiescent)
    // before the driver's retry path reseeks the members. The fault
    // instant still lands on this worker's timeline (interning is a
    // mutex, but faults are the cold path by definition).
    if (flight_ != nullptr) {
      flight_->emit(flight_ring(w), FlightEventType::kFault, fp, 0, flight_->intern(e.what()));
    }
    wk.error = std::current_exception();
  } catch (...) {
    flight_emit(flight_ring(w), FlightEventType::kFault, fp);
    wk.error = std::current_exception();
  }
  wk.phase_wall[static_cast<std::size_t>(fp)] += sw.elapsed_seconds();
  flight_emit(flight_ring(w), FlightEventType::kPhaseEnd, fp, wk.last_phase_rows);
}

void Query::check_worker_errors() {
  std::exception_ptr first;
  for (auto& wk : workers_) {
    if (wk->error && !first) first = wk->error;
    wk->error = nullptr;
  }
  if (first) std::rethrow_exception(first);
}

// ---------------------------------------------------------------------------
// Query: worker-side phases (owned lanes only — no shared state, no locks)
// ---------------------------------------------------------------------------

void Query::fetch_lanes(std::size_t w) {
  Worker& wk = *workers_[w];
  // Worker 0 runs on the driver thread, so its span parents naturally
  // under the open batch span; thread workers carry the batch context
  // over explicitly.
  std::optional<observe::Span> span;
  if (w == 0) {
    span.emplace("engine.fetch");
  } else {
    span.emplace("engine.fetch", batch_ctx_);
  }
  auto batches = wk.member->poll_by_partition(budget_);
  std::size_t rows = 0;
  for (auto& pb : batches) {
    Lane& lane = lanes_[pb.partition];
    lane.pulled = pb.records.size();
    rows += lane.pulled;
    lane.views = std::move(pb.records);
  }
  wk.handoffs.fetch_add(batches.size(), std::memory_order_relaxed);
  wk.rows_fetched.fetch_add(rows, std::memory_order_relaxed);
  wk.last_phase_rows = rows;
  obs_worker_rows_->inc(w, rows);
  const std::size_t owned = wk.member->assigned_partitions().size();
  // Ownership change observed through the broker's generation cell: the
  // flight timeline marks the rebalance on the worker that absorbed (or
  // lost) partitions.
  if (wk.last_owned != SIZE_MAX && wk.last_owned != owned) {
    flight_emit(flight_ring(w), observe::FlightEventType::kRebalance, observe::FlightPhase::kFetch,
                owned);
  }
  wk.last_owned = owned;
  wk.obs_owned->set(static_cast<double>(owned));
  wk.obs_handoff->set(static_cast<double>(batches.size()));
}

void Query::decode_lanes(std::size_t w) {
  Worker& wk = *workers_[w];
  for (std::size_t p : wk.member->assigned_partitions()) {
    Lane& lane = lanes_[p];
    if (lane.pulled == 0) continue;
    lane.table = decoder_(lane.views.records());
    lane.views.clear();
    wk.last_phase_rows += lane.table.num_rows();
    // Lane-local event-time extrema; the driver max-reduces the maxima
    // into the query watermark before any lane operates (so windowing
    // sees the same watermark a single-threaded run would), and
    // min-reduces the minima into the oldest-record end-to-end latency
    // observed at commit.
    const std::size_t tc = lane.table.schema().index_of(config_.time_column);
    if (tc != sql::Schema::npos) {
      const auto& col = lane.table.column(tc);
      for (std::size_t r = 0; r < lane.table.num_rows(); ++r) {
        if (col.is_null(r)) continue;
        const common::TimePoint t = col.int_at(r);
        lane.max_ts = std::max(lane.max_ts, t);
        lane.min_ts = std::min(lane.min_ts, t);
      }
    }
  }
}

void Query::operate_lanes(std::size_t w) {
  Worker& wk = *workers_[w];
  for (std::size_t p : wk.member->assigned_partitions()) {
    Lane& lane = lanes_[p];
    // begin_batch is in-memory bookkeeping and cannot meaningfully throw;
    // setting began right after keeps commit/rollback strictly paired.
    for (auto& op : lane.ops) op->begin_batch();
    lane.began = true;
    if (lane.pulled == 0) continue;  // idle lane: state untouched this batch
    pipeline::Batch b{std::move(lane.table), op_watermark_};
    for (std::size_t i = 0; i < lane.ops.size(); ++i) {
      Stopwatch sw;
      const std::uint64_t in_rows = b.table.num_rows();
      b = lane.ops[i]->process(std::move(b));
      lane.stage_wall[i] += sw.elapsed_seconds();
      lane.stage_rows_in[i] += in_rows;
      lane.stage_rows_out[i] += b.table.num_rows();
    }
    lane.table = std::move(b.table);
    wk.last_phase_rows += lane.table.num_rows();
  }
}

// ---------------------------------------------------------------------------
// Query: driver-side transaction pieces
// ---------------------------------------------------------------------------

std::size_t Query::fetch_generation() {
  for (Lane& lane : lanes_) {
    lane.views.clear();
    lane.table = sql::Table{};
    lane.pulled = 0;
    lane.max_ts = INT64_MIN;
    lane.min_ts = INT64_MAX;
    std::fill(lane.stage_wall.begin(), lane.stage_wall.end(), 0.0);
    std::fill(lane.stage_rows_in.begin(), lane.stage_rows_in.end(), 0);
    std::fill(lane.stage_rows_out.begin(), lane.stage_rows_out.end(), 0);
  }
  run_phase(Phase::kFetch);
  check_worker_errors();
  std::size_t total = 0;
  for (const Lane& lane : lanes_) total += lane.pulled;
  return total;
}

void Query::seek_all_members() {
  for (auto& wk : workers_) {
    if (wk->alive) wk->member->seek_to_committed();
  }
}

void Query::commit_all_members() {
  for (auto& wk : workers_) {
    if (wk->alive) wk->member->commit();
  }
}

void Query::commit_all_lanes() {
  for (Lane& lane : lanes_) {
    if (!lane.began) continue;
    for (auto& op : lane.ops) op->commit_batch();
    lane.began = false;
  }
}

void Query::rollback_all_lanes() {
  for (Lane& lane : lanes_) {
    if (!lane.began) continue;
    for (auto& op : lane.ops) op->rollback_batch();
    lane.began = false;
  }
}

sql::Table Query::merge_lanes() {
  // The deterministic merge point: ascending partition index, offsets
  // already ascending within each lane. Which worker ran a lane is
  // invisible here.
  sql::Table out;
  for (Lane& lane : lanes_) {
    if (lane.table.num_rows() == 0) {
      lane.table = sql::Table{};
      continue;
    }
    if (out.num_columns() == 0) {
      out = std::move(lane.table);
    } else {
      out.append_table(lane.table);
    }
    lane.table = sql::Table{};
  }
  return out;
}

std::size_t Query::run_once() {
  using observe::FlightEventType;
  using observe::FlightPhase;
  Stopwatch batch_sw;
  observe::Span batch_span(batch_span_name_);
  for (pipeline::Sink* s : sinks_) s->begin_batch();

  std::size_t pulled = 0;
  bool pull_ok = false;
  bool ops_began = false;
  watermark_snapshot_ = watermark_;
  flight_emit(0, FlightEventType::kMark, FlightPhase::kNone, metrics_.batches, label_generation_);
  try {
    batch_ctx_ = observe::current_context();
    // Fetch phase, retried whole under the "engine.pull" seam: a faulted
    // fetch may have advanced some members partway, so every retry first
    // restores all members to the group's committed offsets.
    std::uint64_t pull_attempt = 0;
    pulled = retrier_.run(
        "engine.pull", [&] { return fetch_generation(); },
        [&] {
          flight_emit(0, FlightEventType::kRetry, FlightPhase::kFetch, ++pull_attempt,
                      label_query_);
          seek_all_members();
        });
    pull_ok = true;
    if (pulled == 0) {
      for (pipeline::Sink* s : sinks_) s->commit_batch();
      return 0;
    }
    // Re-home the batch span under the producer span stamped on the first
    // record of the lowest non-empty partition (merge order, so the link
    // target is worker-count invariant too).
    for (const Lane& lane : lanes_) {
      if (!lane.views.empty()) {
        batch_span.link(
            observe::TraceContext{lane.views.front().trace_id, lane.views.front().span_id});
        break;
      }
    }

    chaos::fault_point("pipeline.batch");
    if (faults_.fail_on_batch && metrics_.batches == *faults_.fail_on_batch) {
      faults_.fail_on_batch.reset();
      throw std::runtime_error("injected fault");
    }

    run_phase(Phase::kDecode);
    check_worker_errors();
    // Rows are accounted in decoded-table terms (chunked topics pack many
    // rows per record), matching StreamingQuery's rows_ingested.
    pulled = 0;
    for (const Lane& lane : lanes_) pulled += lane.table.num_rows();
    // Global watermark reduction: max over lane maxima. Every lane then
    // operates against the same watermark a workers=1 run would compute.
    common::TimePoint mx = INT64_MIN;
    for (const Lane& lane : lanes_) mx = std::max(mx, lane.max_ts);
    if (mx != INT64_MIN) watermark_ = std::max(watermark_, mx - config_.allowed_lateness);
    op_watermark_ = watermark_;

    ops_began = true;
    run_phase(Phase::kOperate);
    check_worker_errors();

    // Merge the lanes' stage accounting (one RunningStats sample per
    // generation, summed across lanes — comparable to the single-chain
    // numbers StreamingQuery reports).
    flight_emit(0, FlightEventType::kPhaseBegin, FlightPhase::kMerge);
    Stopwatch merge_sw;
    for (std::size_t i = 0; i < metrics_.stages.size(); ++i) {
      double wall = 0.0;
      std::uint64_t in_rows = 0;
      std::uint64_t out_rows = 0;
      for (const Lane& lane : lanes_) {
        wall += lane.stage_wall[i];
        in_rows += lane.stage_rows_in[i];
        out_rows += lane.stage_rows_out[i];
      }
      pipeline::StageMetrics& sm = metrics_.stages[i];
      sm.wall_seconds.add(wall);
      sm.rows_in += in_rows;
      sm.rows_out += out_rows;
    }

    // The oldest event timestamp across lanes: the end-to-end latency
    // sample this generation contributes at commit. Virtual time only —
    // deterministic and worker-count invariant (min over lanes is a
    // global reduction, like the watermark).
    common::TimePoint batch_min_ts = INT64_MAX;
    for (const Lane& lane : lanes_) batch_min_ts = std::min(batch_min_ts, lane.min_ts);

    sql::Table out = merge_lanes();
    const std::uint64_t out_rows = out.num_rows();
    if (out.num_rows() > 0) {
      for (pipeline::Sink* s : sinks_) {
        observe::Span sink_span("sink.write");
        s->write(out);
      }
    }
    driver_wall_[static_cast<std::size_t>(FlightPhase::kMerge)] += merge_sw.elapsed_seconds();
    flight_emit(0, FlightEventType::kPhaseEnd, FlightPhase::kMerge, out_rows);

    // Commit order: sinks first (infallible in-memory bookkeeping), then
    // lane operator state, then the members' offsets. Nothing after the
    // sink writes can throw, so a generation fully lands or fully rolls
    // back.
    flight_emit(0, FlightEventType::kPhaseBegin, FlightPhase::kCommit);
    Stopwatch commit_sw;
    for (pipeline::Sink* s : sinks_) s->commit_batch();
    commit_all_lanes();
    commit_all_members();
    driver_wall_[static_cast<std::size_t>(FlightPhase::kCommit)] += commit_sw.elapsed_seconds();
    flight_emit(0, FlightEventType::kPhaseEnd, FlightPhase::kCommit, pulled);
    metrics_.rows_ingested += pulled;
    ++metrics_.batches;
    consecutive_failures_ = 0;
    metrics_.batch_wall_seconds.add(batch_sw.elapsed_seconds());
    obs_batches_->inc();
    obs_rows_->inc(pulled);
    obs_batch_seconds_->add(batch_sw.elapsed_seconds());
    obs_watermark_->set(static_cast<double>(watermark_));
    if (batch_min_ts != INT64_MAX) {
      // Records are stamped with facility time at (staged-)produce; the
      // gap to the commit instant is the oldest record's e2e latency.
      obs_e2e_->add(std::max(0.0, static_cast<double>(observe::virtual_now() - batch_min_ts) /
                                      static_cast<double>(common::kSecond)));
    }
    publish_phase_gauges();
    return pulled;
  } catch (const std::exception& e) {
    ++metrics_.failures;
    metrics_.last_error = e.what();
    obs_failures_->inc();
    // The fault instant lands on the driver ring, and the black box is
    // flagged for export: a chaos-injected generation failure is exactly
    // the "seconds before the crash" a flight recorder exists for.
    if (flight_ != nullptr) {
      flight_->emit(0, FlightEventType::kFault, FlightPhase::kNone, consecutive_failures_,
                    flight_->intern(e.what()));
      flight_->request_dump(std::string("query.error:") + config_.name);
    }
    if (ops_began) rollback_all_lanes();
    watermark_ = watermark_snapshot_;
    for (pipeline::Sink* s : sinks_) s->rollback_batch();
    if (!pull_ok) {
      // The fetch itself gave up (outage outlasting the retry budget).
      // Members may have phantom-advanced; restore them and report "no
      // progress" — the batch was never observed, nothing to dead-letter.
      seek_all_members();
      return 0;
    }
    if (config_.max_retries > 0 && ++consecutive_failures_ >= config_.max_retries) {
      // Dead-letter the poison generation: commit past it so the pipeline
      // makes progress (at-most-once for this batch only). Members'
      // positions still sit past the poison records — committing them is
      // exactly the skip.
      for (pipeline::Sink* s : sinks_) s->commit_batch();
      commit_all_members();
      ++metrics_.batches_skipped;
      obs_skipped_->inc();
      consecutive_failures_ = 0;
      flight_emit(0, FlightEventType::kMark, FlightPhase::kNone, metrics_.batches_skipped,
                  label_dead_letter_);
    } else {
      seek_all_members();  // replay on the next run_once()
    }
    return pulled;
  }
}

std::uint64_t Query::run_until_caught_up(std::size_t max_batches) {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < max_batches; ++b) {
    const std::size_t n = run_once();
    if (n == 0 && lag() == 0) break;
    total += n;
  }
  return total;
}

void Query::finalize() {
  // Drain stateful lane operators in ascending partition order: flush op
  // i, push the result through the remaining stages, then op i+1 — twice,
  // because downstream stateful ops may still hold the pushed rows.
  // Same recipe as StreamingQuery::finalize, per lane, so the output is a
  // pure function of lane state (worker count invisible).
  for (int pass = 0; pass < 2; ++pass) {
    for (Lane& lane : lanes_) {
      for (std::size_t i = 0; i < lane.ops.size(); ++i) {
        pipeline::Batch b = lane.ops[i]->flush();
        if (b.table.num_rows() == 0) continue;
        for (std::size_t j = i + 1; j < lane.ops.size(); ++j) {
          b = lane.ops[j]->process(std::move(b));
        }
        for (pipeline::Sink* s : sinks_) s->write(b.table);
      }
    }
  }
  for (pipeline::Sink* s : sinks_) s->flush();
}

std::int64_t Query::lag() const {
  std::int64_t total = 0;
  for (const auto& wk : workers_) {
    if (wk->alive) total += wk->member->lag();
  }
  return total;
}

std::size_t Query::num_workers() const {
  std::size_t n = 0;
  for (const auto& wk : workers_) n += wk->alive ? 1 : 0;
  return n;
}

void Query::kill_worker(std::size_t w) {
  if (w >= workers_.size()) throw std::out_of_range("Query::kill_worker: no such worker");
  Worker& wk = *workers_[w];
  if (!wk.alive) return;
  if (num_workers() == 1) {
    throw std::invalid_argument("Query::kill_worker: cannot kill the last worker");
  }
  if (wk.thread.joinable()) {
    {
      std::lock_guard lk(phase_mu_);
      wk.die.store(true, std::memory_order_relaxed);
      phase_cv_.notify_all();
    }
    wk.thread.join();
    --live_threads_;
  }
  wk.alive = false;
  // Leaving bumps the group generation; survivors observe it through the
  // broker's lock-free cell on their next fetch and absorb the freed
  // partitions. Stale in-flight positions the dead worker held are voided
  // by the fenced commit.
  wk.member->leave();
  wk.obs_owned->set(0.0);
  wk.obs_handoff->set(0.0);
  // The departure instant on the driver ring (survivors mark the absorb
  // side from fetch_lanes when their owned count jumps).
  flight_emit(0, observe::FlightEventType::kRebalance, observe::FlightPhase::kNone, w,
              label_query_);
}

PhaseProfile Query::phase_profile() const {
  using observe::FlightPhase;
  PhaseProfile p;
  for (const auto& wk : workers_) {
    p.fetch_s += wk->phase_wall[static_cast<std::size_t>(FlightPhase::kFetch)];
    p.decode_s += wk->phase_wall[static_cast<std::size_t>(FlightPhase::kDecode)];
    p.operate_s += wk->phase_wall[static_cast<std::size_t>(FlightPhase::kOperate)];
    p.barrier_s += wk->phase_wall[static_cast<std::size_t>(FlightPhase::kBarrier)];
  }
  p.barrier_s += driver_wall_[static_cast<std::size_t>(FlightPhase::kBarrier)];
  p.merge_s = driver_wall_[static_cast<std::size_t>(FlightPhase::kMerge)];
  p.commit_s = driver_wall_[static_cast<std::size_t>(FlightPhase::kCommit)];
  return p;
}

void Query::publish_phase_gauges() {
  using observe::FlightPhase;
  const PhaseProfile p = phase_profile();
  if (p.accounted_s() <= 0.0) return;
  obs_phase_pct_[static_cast<std::size_t>(FlightPhase::kFetch)]->set(p.pct(p.fetch_s));
  obs_phase_pct_[static_cast<std::size_t>(FlightPhase::kDecode)]->set(p.pct(p.decode_s));
  obs_phase_pct_[static_cast<std::size_t>(FlightPhase::kOperate)]->set(p.pct(p.operate_s));
  obs_phase_pct_[static_cast<std::size_t>(FlightPhase::kBarrier)]->set(p.pct(p.barrier_s));
  obs_phase_pct_[static_cast<std::size_t>(FlightPhase::kMerge)]->set(p.pct(p.merge_s));
  obs_phase_pct_[static_cast<std::size_t>(FlightPhase::kCommit)]->set(p.pct(p.commit_s));
}

std::vector<WorkerStats> Query::worker_stats() const {
  std::vector<WorkerStats> out;
  out.reserve(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    const Worker& wk = *workers_[i];
    WorkerStats s;
    s.worker = i;
    s.alive = wk.alive;
    s.owned_partitions = wk.alive ? wk.member->assigned_partitions().size() : 0;
    s.rows_fetched = wk.rows_fetched.load(std::memory_order_relaxed);
    s.handoffs = wk.handoffs.load(std::memory_order_relaxed);
    out.push_back(s);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine(EngineConfig config) : config_(config) {
  config_.validate();
  workers_ = config_.workers == 0
                 ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
                 : config_.workers;
  auto& reg = observe::default_registry();
  obs_workers_ = reg.gauge("engine.workers");
  obs_queries_ = reg.gauge("engine.queries");
  obs_rounds_ = reg.counter("engine.rounds");
  obs_batches_ = reg.counter("engine.batches");
  obs_rows_ = reg.counter("engine.rows");
  obs_workers_->set(static_cast<double>(workers_));
  obs_queries_->set(0.0);
  if (config_.flight_capacity > 0) {
    // One ring per worker slot plus the driver's. Installing globally
    // lets out-of-band observers (SLO transitions) raise the dump latch
    // without a dependency edge back into the engine.
    flight_ = std::make_unique<observe::FlightRecorder>(1 + workers_, config_.flight_capacity);
    observe::install_flight_recorder(flight_.get());
  }
}

Engine::~Engine() {
  if (flight_) observe::uninstall_flight_recorder(flight_.get());
}

Query& Engine::add_query(pipeline::QueryConfig config, SourceSpec spec) {
  if (!spec.broker) throw std::invalid_argument("SourceSpec: broker must be set");
  const std::size_t num_partitions = spec.broker->topic(spec.topic).num_partitions();
  if (config_.ownership.partitions != 0 && config_.ownership.partitions != num_partitions) {
    throw std::invalid_argument("Engine: topic '" + spec.topic + "' has " +
                                std::to_string(num_partitions) +
                                " partitions but the ownership config declares " +
                                std::to_string(config_.ownership.partitions));
  }
  queries_.push_back(std::make_unique<Query>(std::move(config), spec, workers_, flight_.get()));
  obs_queries_->set(static_cast<double>(queries_.size()));
  return *queries_.back();
}

std::uint64_t Engine::run_until_caught_up(std::size_t max_rounds) {
  Stopwatch sw;
  std::uint64_t total_rows = 0;
  std::uint64_t rounds = 0;
  std::uint64_t batches = 0;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    std::uint64_t round_rows = 0;
    std::uint64_t round_batches = 0;
    // Queries run in add order; parallelism lives inside each query's
    // worker team now, so the round loop itself is deterministic. Rounds
    // repeat until no query makes progress, draining multi-hop chains.
    for (auto& q : queries_) {
      // Progress is measured on *committed* work (run_once also returns
      // the pulled rows of a failed, rolled-back batch — counting those
      // would double-bill replays).
      const pipeline::QueryMetrics& m = q->metrics();
      const std::uint64_t rows0 = m.rows_ingested;
      const std::uint64_t batches0 = m.batches;
      const std::uint64_t skipped0 = m.batches_skipped;
      for (std::size_t b = 0; b < config_.max_batches_per_round; ++b) {
        const std::size_t n = q->run_once();
        if (n == 0 && q->lag() == 0) break;  // caught up
        // n == 0 with lag left (pull failed) burns round budget; a
        // failed batch (n > 0, rolled back) replays on the next pass.
      }
      round_rows += m.rows_ingested - rows0;
      // Dead-lettered batches count as progress too: they advance the
      // committed offsets even though no rows landed.
      round_batches += (m.batches - batches0) + (m.batches_skipped - skipped0);
    }
    ++rounds;
    batches += round_batches;
    total_rows += round_rows;
    if (round_batches == 0) break;  // quiescent: no query advanced
  }
  obs_rounds_->inc(rounds);
  obs_batches_->inc(batches);
  obs_rows_->inc(total_rows);
  {
    std::lock_guard lk(stats_mu_);
    stats_.rounds += rounds;
    stats_.batches += batches;
    stats_.rows += total_rows;
    stats_.wall_seconds += sw.elapsed_seconds();
  }
  return total_rows;
}

EngineStats Engine::stats() const {
  std::lock_guard lk(stats_mu_);
  return stats_;
}

bool Engine::flight_dump_requested() const {
  return flight_ != nullptr && flight_->dump_requested();
}

observe::FlightDump Engine::dump_flight(std::string trigger) {
  if (!flight_) return observe::FlightDump{};
  std::vector<std::string> ring_names;
  ring_names.reserve(1 + workers_);
  ring_names.push_back("driver");
  for (std::size_t w = 0; w < workers_; ++w) ring_names.push_back("w" + std::to_string(w));
  return flight_->dump(std::move(trigger), ring_names);
}

std::vector<std::pair<std::string, WorkerStats>> Engine::worker_info() const {
  std::vector<std::pair<std::string, WorkerStats>> out;
  for (const auto& q : queries_) {
    for (const WorkerStats& ws : q->worker_stats()) out.emplace_back(q->name(), ws);
  }
  return out;
}

}  // namespace oda::engine
