#include "engine/engine.hpp"

#include <algorithm>
#include <exception>
#include <future>
#include <stdexcept>
#include <thread>

#include "common/stats.hpp"

namespace oda::engine {

void EngineConfig::validate() const {
  if (max_batches_per_round == 0) {
    throw std::invalid_argument("EngineConfig: max_batches_per_round must be >= 1");
  }
}

ParallelBrokerSource::ParallelBrokerSource(stream::Broker& broker, std::string topic,
                                           std::string group, pipeline::RecordDecoder decoder,
                                           common::ThreadPool& pool, std::size_t workers,
                                           chaos::RetryPolicy retry)
    : broker_(broker),
      topic_(std::move(topic)),
      pool_(pool),
      decoder_(std::move(decoder)),
      retrier_(retry, /*seed=*/0xe2619eull) {
  num_partitions_ = broker_.topic(topic_).num_partitions();
  const std::size_t n = std::clamp<std::size_t>(workers, 1, num_partitions_);
  members_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    members_.push_back(std::make_unique<stream::GroupMember>(broker_, group, topic_));
  }
}

std::vector<stream::PartitionBatchView> ParallelBrokerSource::fan_out(std::size_t per_partition) {
  // The calling query's open batch span, carried to the pool threads so
  // every worker fetch parents under the batch that asked for it.
  const observe::TraceContext batch_ctx = observe::current_context();

  std::vector<std::future<std::vector<stream::PartitionBatchView>>> futs;
  futs.reserve(members_.size() - 1);
  for (std::size_t i = 1; i < members_.size(); ++i) {
    stream::GroupMember* m = members_[i].get();
    futs.push_back(pool_.submit([m, per_partition, batch_ctx] {
      observe::Span span("engine.fetch", batch_ctx);
      return m->poll_by_partition_view(per_partition);
    }));
  }

  std::vector<stream::PartitionBatchView> all;
  std::exception_ptr err;
  try {
    // Member 0 runs inline on the driver: its span parents naturally
    // under the open batch span, and one worker's work costs no handoff.
    observe::Span span("engine.fetch");
    all = members_[0]->poll_by_partition_view(per_partition);
  } catch (...) {
    err = std::current_exception();
  }
  for (auto& f : futs) {
    try {
      auto batches = f.get();
      all.insert(all.end(), std::make_move_iterator(batches.begin()),
                 std::make_move_iterator(batches.end()));
    } catch (...) {
      // Keep draining: every member must be quiescent before the retry
      // path rewinds them, so the first fault is held, not thrown.
      if (!err) err = std::current_exception();
    }
  }
  if (err) std::rethrow_exception(err);
  return all;
}

sql::Table ParallelBrokerSource::pull(std::size_t max_records) {
  // Per-partition cap: makes batch composition a pure function of
  // committed offsets + partition count (never of worker count).
  const std::size_t per_partition = std::max<std::size_t>(1, max_records / num_partitions_);
  auto batches = retrier_.run(
      "engine.pull", [&] { return fan_out(per_partition); },
      [&] {
        for (auto& m : members_) m->seek_to_committed();
      });

  // Deterministic merge: ascending partition index, offsets already
  // ascending within each batch. Which member fetched which partition is
  // invisible in the result. Views and segment pins splice; no record is
  // copied between the log and the decoder.
  std::sort(batches.begin(), batches.end(),
            [](const stream::PartitionBatchView& a, const stream::PartitionBatchView& b) {
              return a.partition < b.partition;
            });
  stream::FetchView records;
  std::size_t total = 0;
  for (const auto& b : batches) total += b.records.size();
  records.reserve(total);
  for (auto& b : batches) records.append(std::move(b.records));
  incoming_ = records.empty()
                  ? observe::TraceContext{}
                  : observe::TraceContext{records.front().trace_id, records.front().span_id};
  return decoder_(records.records());
}

void ParallelBrokerSource::commit() {
  for (auto& m : members_) m->commit();
}

void ParallelBrokerSource::rewind() {
  for (auto& m : members_) m->seek_to_committed();
}

std::int64_t ParallelBrokerSource::lag() const {
  std::int64_t total = 0;
  for (const auto& m : members_) total += m->lag();
  return total;
}

Engine::Engine(EngineConfig config)
    : config_(config),
      pool_(config.workers == 0 ? std::thread::hardware_concurrency() : config.workers) {
  config_.validate();
  auto& reg = observe::default_registry();
  obs_workers_ = reg.gauge("engine.workers");
  obs_queries_ = reg.gauge("engine.queries");
  obs_rounds_ = reg.counter("engine.rounds");
  obs_batches_ = reg.counter("engine.batches");
  obs_rows_ = reg.counter("engine.rows");
  obs_workers_->set(static_cast<double>(pool_.size()));
  obs_queries_->set(0.0);
}

Engine::~Engine() = default;

std::unique_ptr<ParallelBrokerSource> Engine::make_source(stream::Broker& broker, std::string topic,
                                                          std::string group,
                                                          pipeline::RecordDecoder decoder,
                                                          chaos::RetryPolicy retry) {
  return std::make_unique<ParallelBrokerSource>(broker, std::move(topic), std::move(group),
                                                std::move(decoder), pool_, pool_.size(), retry);
}

pipeline::StreamingQuery& Engine::add_query(pipeline::QueryConfig config,
                                            std::unique_ptr<pipeline::Source> source) {
  owned_queries_.push_back(
      std::make_unique<pipeline::StreamingQuery>(std::move(config), std::move(source)));
  queries_.push_back(owned_queries_.back().get());
  obs_queries_->set(static_cast<double>(queries_.size()));
  return *owned_queries_.back();
}

void Engine::add_query_ref(pipeline::StreamingQuery& query) {
  queries_.push_back(&query);
  obs_queries_->set(static_cast<double>(queries_.size()));
}

std::uint64_t Engine::run_until_caught_up(std::size_t max_rounds) {
  common::Stopwatch sw;
  std::uint64_t total_rows = 0;
  std::uint64_t rounds = 0;
  std::uint64_t batches = 0;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    std::atomic<std::uint64_t> round_rows{0};
    std::atomic<std::uint64_t> round_batches{0};
    // One driver thread per query: queries are independent state machines
    // (distinct sources, operators, sinks); only their partition fetches
    // share the worker pool. run_once never throws on infrastructure
    // faults, so drivers always join.
    std::vector<std::thread> drivers;
    drivers.reserve(queries_.size());
    for (pipeline::StreamingQuery* q : queries_) {
      drivers.emplace_back([this, q, &round_rows, &round_batches] {
        // Progress is measured on *committed* work (run_once also returns
        // the pulled rows of a failed, rolled-back batch — counting those
        // would double-bill replays).
        const pipeline::QueryMetrics& m = q->metrics();
        const std::uint64_t rows0 = m.rows_ingested;
        const std::uint64_t batches0 = m.batches;
        const std::uint64_t skipped0 = m.batches_skipped;
        for (std::size_t b = 0; b < config_.max_batches_per_round; ++b) {
          const std::size_t n = q->run_once();
          if (n == 0 && q->source().lag() == 0) break;  // caught up
          // n == 0 with lag left (pull failed) burns round budget; a
          // failed batch (n > 0, rolled back) replays on the next pass.
        }
        round_rows.fetch_add(m.rows_ingested - rows0, std::memory_order_relaxed);
        // Dead-lettered batches count as progress too: they advance the
        // committed offsets even though no rows landed.
        round_batches.fetch_add((m.batches - batches0) + (m.batches_skipped - skipped0),
                                std::memory_order_relaxed);
      });
    }
    for (auto& d : drivers) d.join();
    ++rounds;
    batches += round_batches.load();
    total_rows += round_rows.load();
    if (round_batches.load() == 0) break;  // quiescent: no query advanced
  }
  obs_rounds_->inc(rounds);
  obs_batches_->inc(batches);
  obs_rows_->inc(total_rows);
  {
    std::lock_guard lk(stats_mu_);
    stats_.rounds += rounds;
    stats_.batches += batches;
    stats_.rows += total_rows;
    stats_.wall_seconds += sw.elapsed_seconds();
  }
  return total_rows;
}

EngineStats Engine::stats() const {
  std::lock_guard lk(stats_mu_);
  return stats_;
}

}  // namespace oda::engine
