#include "ml/kmeans.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace oda::ml {

namespace {
double sq_dist(std::span<const double> a, std::span<const double> b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double x = a[i] - b[i];
    d += x * x;
  }
  return d;
}
}  // namespace

void KMeans::fit(const FeatureMatrix& x, common::Rng& rng) {
  const std::size_t n = x.rows(), dim = x.cols();
  const std::size_t k = std::min(config_.k, std::max<std::size_t>(1, n));
  centroids_ = FeatureMatrix(k, dim);

  // k-means++ seeding.
  std::vector<double> min_d2(n, std::numeric_limits<double>::infinity());
  std::size_t first = rng.uniform_index(std::max<std::size_t>(1, n));
  if (n > 0) std::memcpy(centroids_.row(0).data(), x.row(first).data(), dim * sizeof(double));
  for (std::size_t c = 1; c < k; ++c) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      min_d2[i] = std::min(min_d2[i], sq_dist(x.row(i), centroids_.row(c - 1)));
      total += min_d2[i];
    }
    double target = rng.uniform() * total;
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      target -= min_d2[i];
      if (target <= 0) {
        chosen = i;
        break;
      }
    }
    std::memcpy(centroids_.row(c).data(), x.row(chosen).data(), dim * sizeof(double));
  }

  // Lloyd iterations.
  std::vector<std::size_t> assign(n, 0);
  std::vector<double> sums(k * dim);
  std::vector<std::size_t> counts(k);
  double prev_inertia = std::numeric_limits<double>::infinity();
  for (iters_ = 0; iters_ < config_.max_iters; ++iters_) {
    inertia_ = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::size_t bc = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const double d = sq_dist(x.row(i), centroids_.row(c));
        if (d < best) {
          best = d;
          bc = c;
        }
      }
      assign[i] = bc;
      inertia_ += best;
    }
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = x.row(i);
      double* s = &sums[assign[i] * dim];
      for (std::size_t d = 0; d < dim; ++d) s[d] += row[d];
      ++counts[assign[i]];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // keep previous centroid for empty cluster
      auto cr = centroids_.row(c);
      for (std::size_t d = 0; d < dim; ++d) cr[d] = sums[c * dim + d] / static_cast<double>(counts[c]);
    }
    if (prev_inertia - inertia_ <= config_.tol * std::max(1.0, prev_inertia)) break;
    prev_inertia = inertia_;
  }
}

std::size_t KMeans::predict_one(std::span<const double> row) const {
  double best = std::numeric_limits<double>::infinity();
  std::size_t bc = 0;
  for (std::size_t c = 0; c < centroids_.rows(); ++c) {
    const double d = sq_dist(row, centroids_.row(c));
    if (d < best) {
      best = d;
      bc = c;
    }
  }
  return bc;
}

std::vector<std::size_t> KMeans::predict(const FeatureMatrix& x) const {
  std::vector<std::size_t> out(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out[i] = predict_one(x.row(i));
  return out;
}

double cluster_purity(std::span<const std::size_t> assignments, std::span<const std::size_t> labels,
                      std::size_t k, std::size_t num_labels) {
  if (assignments.empty()) return 0.0;
  std::vector<std::size_t> table(k * num_labels, 0);
  for (std::size_t i = 0; i < assignments.size(); ++i) {
    table[assignments[i] * num_labels + labels[i]]++;
  }
  std::size_t majority_sum = 0;
  for (std::size_t c = 0; c < k; ++c) {
    majority_sum += *std::max_element(table.begin() + static_cast<std::ptrdiff_t>(c * num_labels),
                                      table.begin() + static_cast<std::ptrdiff_t>((c + 1) * num_labels));
  }
  return static_cast<double>(majority_sum) / static_cast<double>(assignments.size());
}

}  // namespace oda::ml
