// Semi-supervised anomaly detection on node telemetry (the use case of
// refs [17][18]: "anomaly detection for monitoring power consumption in
// HPC facilities"). An autoencoder learns the healthy manifold; the
// reconstruction error of new samples scores their abnormality, with the
// alert threshold calibrated as a quantile of healthy-period scores.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/feature.hpp"
#include "ml/nn.hpp"

namespace oda::ml {

struct AnomalyDetectorConfig {
  std::size_t bottleneck = 3;
  std::size_t hidden = 16;
  double threshold_quantile = 0.995;  ///< of healthy-period scores
  TrainConfig train;

  AnomalyDetectorConfig() {
    train.epochs = 80;
    train.batch_size = 32;
    train.learning_rate = 2e-3;
  }
};

class AnomalyDetector {
 public:
  explicit AnomalyDetector(AnomalyDetectorConfig config = {});

  /// Train on healthy-period samples (rows = observations). Returns the
  /// calibrated alert threshold.
  double fit(const FeatureMatrix& healthy, std::uint64_t seed);

  /// Reconstruction-error score of one observation (scaled space MSE).
  double score(std::span<const double> x) const;
  /// True when score exceeds the calibrated threshold.
  bool is_anomalous(std::span<const double> x) const;

  double threshold() const { return threshold_; }
  const Mlp& autoencoder() const { return ae_; }

  std::vector<std::uint8_t> serialize() const;
  static AnomalyDetector deserialize(std::span<const std::uint8_t> data);

 private:
  AnomalyDetectorConfig config_;
  StandardScaler scaler_;
  Mlp ae_;
  double threshold_ = 0.0;
  bool fitted_ = false;
};

/// Scoring outcome over a labelled evaluation set.
struct DetectionMetrics {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
  std::size_t true_negatives = 0;

  double precision() const {
    const auto d = true_positives + false_positives;
    return d ? static_cast<double>(true_positives) / static_cast<double>(d) : 0.0;
  }
  double recall() const {
    const auto d = true_positives + false_negatives;
    return d ? static_cast<double>(true_positives) / static_cast<double>(d) : 0.0;
  }
  double f1() const {
    const double p = precision(), r = recall();
    return p + r > 0 ? 2 * p * r / (p + r) : 0.0;
  }
};

/// Evaluate a detector against labelled rows (true = anomalous).
DetectionMetrics evaluate_detector(const AnomalyDetector& detector, const FeatureMatrix& x,
                                   std::span<const bool> labels);

}  // namespace oda::ml
