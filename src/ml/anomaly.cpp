#include "ml/anomaly.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/bytes.hpp"

namespace oda::ml {

AnomalyDetector::AnomalyDetector(AnomalyDetectorConfig config) : config_(config) {}

double AnomalyDetector::fit(const FeatureMatrix& healthy, std::uint64_t seed) {
  if (healthy.rows() < 8) throw std::invalid_argument("AnomalyDetector: too few healthy samples");
  common::Rng rng(seed);
  FeatureMatrix x = healthy;
  scaler_.fit(x);
  scaler_.transform(x);

  ae_ = make_autoencoder(x.cols(), config_.bottleneck, config_.hidden, rng);
  ae_.train(x, x, config_.train, rng);
  fitted_ = true;

  std::vector<double> scores(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto out = ae_.predict(x.row(r));
    double err = 0.0;
    for (std::size_t c = 0; c < out.size(); ++c) {
      const double d = out[c] - x.at(r, c);
      err += d * d;
    }
    scores[r] = err / static_cast<double>(out.size());
  }
  std::sort(scores.begin(), scores.end());
  const auto idx = static_cast<std::size_t>(config_.threshold_quantile *
                                            static_cast<double>(scores.size() - 1));
  // Floor plus headroom so a perfectly reconstructed training set does
  // not produce a zero threshold.
  threshold_ = std::max(1e-6, scores[idx] * 1.5);
  return threshold_;
}

double AnomalyDetector::score(std::span<const double> x) const {
  if (!fitted_) throw std::logic_error("AnomalyDetector: score before fit");
  FeatureMatrix one(1, x.size());
  std::copy(x.begin(), x.end(), one.row(0).begin());
  scaler_.transform(one);
  const auto out = ae_.predict(one.row(0));
  double err = 0.0;
  for (std::size_t c = 0; c < out.size(); ++c) {
    const double d = out[c] - one.at(0, c);
    err += d * d;
  }
  return err / static_cast<double>(out.size());
}

bool AnomalyDetector::is_anomalous(std::span<const double> x) const { return score(x) > threshold_; }

std::vector<std::uint8_t> AnomalyDetector::serialize() const {
  common::ByteWriter w;
  w.f64(threshold_);
  w.varint(scaler_.means().size());
  for (double m : scaler_.means()) w.f64(m);
  for (double s : scaler_.stds()) w.f64(s);
  const auto net = ae_.serialize();
  w.varint(net.size());
  w.raw(net.data(), net.size());
  return w.take();
}

AnomalyDetector AnomalyDetector::deserialize(std::span<const std::uint8_t> data) {
  common::ByteReader r(data);
  AnomalyDetector d;
  d.threshold_ = r.f64();
  const std::uint64_t n = r.varint();
  // Rebuild the scaler through fit on a 2-row synthetic matrix encoding
  // mean/std exactly: row0 = mean - std, row1 = mean + std.
  FeatureMatrix synth(2, n);
  std::vector<double> means(n), stds(n);
  for (auto& m : means) m = r.f64();
  for (auto& s : stds) s = r.f64();
  for (std::size_t c = 0; c < n; ++c) {
    synth.at(0, c) = means[c] - stds[c];
    synth.at(1, c) = means[c] + stds[c];
  }
  d.scaler_.fit(synth);
  const std::uint64_t len = r.varint();
  d.ae_ = Mlp::deserialize(r.raw(len));
  d.fitted_ = true;
  return d;
}

DetectionMetrics evaluate_detector(const AnomalyDetector& detector, const FeatureMatrix& x,
                                   std::span<const bool> labels) {
  DetectionMetrics m;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const bool flagged = detector.is_anomalous(x.row(r));
    const bool truth = labels[r];
    if (flagged && truth) ++m.true_positives;
    if (flagged && !truth) ++m.false_positives;
    if (!flagged && truth) ++m.false_negatives;
    if (!flagged && !truth) ++m.true_negatives;
  }
  return m;
}

}  // namespace oda::ml
