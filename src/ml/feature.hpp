// Feature engineering bridge between Silver tables and ML models:
// dense matrices, scaling, splits, and Table conversion (the
// "featurization — yielding Gold stage data artifacts" of Sec V-A).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sql/table.hpp"

namespace oda::ml {

/// Row-major dense matrix with named columns.
class FeatureMatrix {
 public:
  FeatureMatrix() = default;
  FeatureMatrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}
  FeatureMatrix(std::size_t rows, std::size_t cols, std::vector<std::string> names)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0), names_(std::move(names)) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  std::span<double> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const double> row(std::size_t r) const { return {data_.data() + r * cols_, cols_}; }
  const std::vector<std::string>& names() const { return names_; }
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Content hash for reproducibility manifests.
  std::uint64_t content_hash() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
  std::vector<std::string> names_;
};

/// Extract numeric columns of a Table into a FeatureMatrix
/// (nulls become 0; column subset optional — empty = all numeric).
FeatureMatrix table_to_matrix(const sql::Table& t, const std::vector<std::string>& columns = {});

/// Z-score scaler, fit on train, applied to any matrix.
class StandardScaler {
 public:
  void fit(const FeatureMatrix& x);
  void transform(FeatureMatrix& x) const;
  FeatureMatrix fit_transform(FeatureMatrix x) {
    fit(x);
    transform(x);
    return x;
  }
  const std::vector<double>& means() const { return mean_; }
  const std::vector<double>& stds() const { return std_; }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

struct TrainTestSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Deterministic shuffled split.
TrainTestSplit train_test_split(std::size_t n, double test_fraction, common::Rng& rng);

/// Gather a subset of rows.
FeatureMatrix take_rows(const FeatureMatrix& x, std::span<const std::size_t> idx);

}  // namespace oda::ml
