#include "ml/registry.hpp"

#include "common/bytes.hpp"

namespace oda::ml {

std::uint32_t FeatureStore::commit(const std::string& name, FeatureMatrix features,
                                   common::TimePoint now) {
  std::lock_guard lk(mu_);
  auto& versions = store_[name];
  const std::uint64_t hash = features.content_hash();
  for (const auto& v : versions) {
    if (v.meta.content_hash == hash) return v.meta.version;  // dedup
  }
  Entry e;
  e.meta.version = static_cast<std::uint32_t>(versions.size() + 1);
  e.meta.content_hash = hash;
  e.meta.created = now;
  e.meta.rows = features.rows();
  e.meta.cols = features.cols();
  e.features = std::move(features);
  versions.push_back(std::move(e));
  return versions.back().meta.version;
}

std::optional<FeatureMatrix> FeatureStore::get(const std::string& name, std::uint32_t version) const {
  std::lock_guard lk(mu_);
  auto it = store_.find(name);
  if (it == store_.end()) return std::nullopt;
  for (const auto& e : it->second) {
    if (e.meta.version == version) return e.features;
  }
  return std::nullopt;
}

std::optional<FeatureMatrix> FeatureStore::latest(const std::string& name) const {
  std::lock_guard lk(mu_);
  auto it = store_.find(name);
  if (it == store_.end() || it->second.empty()) return std::nullopt;
  return it->second.back().features;
}

std::vector<FeatureStore::Version> FeatureStore::history(const std::string& name) const {
  std::lock_guard lk(mu_);
  std::vector<Version> out;
  auto it = store_.find(name);
  if (it == store_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& e : it->second) out.push_back(e.meta);
  return out;
}

std::uint64_t ExperimentTracker::start_run(const std::string& experiment, common::TimePoint now) {
  std::lock_guard lk(mu_);
  const std::uint64_t id = next_id_++;
  Run r;
  r.run_id = id;
  r.experiment = experiment;
  r.started = now;
  runs_[id] = std::move(r);
  return id;
}

void ExperimentTracker::log_param(std::uint64_t run_id, const std::string& key, const std::string& value) {
  std::lock_guard lk(mu_);
  runs_.at(run_id).params[key] = value;
}

void ExperimentTracker::log_metric(std::uint64_t run_id, const std::string& key, double value) {
  std::lock_guard lk(mu_);
  runs_.at(run_id).metrics[key] = value;
}

std::optional<ExperimentTracker::Run> ExperimentTracker::get_run(std::uint64_t run_id) const {
  std::lock_guard lk(mu_);
  auto it = runs_.find(run_id);
  if (it == runs_.end()) return std::nullopt;
  return it->second;
}

std::vector<ExperimentTracker::Run> ExperimentTracker::runs(const std::string& experiment) const {
  std::lock_guard lk(mu_);
  std::vector<Run> out;
  for (const auto& [_, r] : runs_) {
    if (r.experiment == experiment) out.push_back(r);
  }
  return out;
}

std::optional<ExperimentTracker::Run> ExperimentTracker::best_run(const std::string& experiment,
                                                                  const std::string& metric,
                                                                  bool maximize) const {
  std::lock_guard lk(mu_);
  std::optional<Run> best;
  for (const auto& [_, r] : runs_) {
    if (r.experiment != experiment) continue;
    auto it = r.metrics.find(metric);
    if (it == r.metrics.end()) continue;
    if (!best) {
      best = r;
      continue;
    }
    const double cur = best->metrics.at(metric);
    if ((maximize && it->second > cur) || (!maximize && it->second < cur)) best = r;
  }
  return best;
}

std::uint32_t ModelRegistry::register_model(const std::string& name, std::vector<std::uint8_t> bytes,
                                            std::map<std::string, double> metrics, common::TimePoint now) {
  std::lock_guard lk(mu_);
  auto& versions = models_[name];
  Entry e;
  e.meta.name = name;
  e.meta.version = static_cast<std::uint32_t>(versions.size() + 1);
  e.meta.content_hash = common::fnv1a(std::span<const std::uint8_t>(bytes.data(), bytes.size()));
  e.meta.registered = now;
  e.meta.metrics = std::move(metrics);
  e.bytes = std::move(bytes);
  versions.push_back(std::move(e));
  return versions.back().meta.version;
}

std::optional<std::vector<std::uint8_t>> ModelRegistry::load(const std::string& name,
                                                             std::uint32_t version) const {
  std::lock_guard lk(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) return std::nullopt;
  for (const auto& e : it->second) {
    if (e.meta.version == version) return e.bytes;
  }
  return std::nullopt;
}

std::optional<std::vector<std::uint8_t>> ModelRegistry::load_production(const std::string& name) const {
  std::lock_guard lk(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) return std::nullopt;
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (rit->meta.stage == Stage::kProduction) return rit->bytes;
  }
  return std::nullopt;
}

void ModelRegistry::transition(const std::string& name, std::uint32_t version, Stage stage) {
  std::lock_guard lk(mu_);
  for (auto& e : models_.at(name)) {
    if (e.meta.version == version) {
      e.meta.stage = stage;
      return;
    }
  }
}

std::vector<ModelRegistry::ModelVersion> ModelRegistry::versions(const std::string& name) const {
  std::lock_guard lk(mu_);
  std::vector<ModelVersion> out;
  auto it = models_.find(name);
  if (it == models_.end()) return out;
  for (const auto& e : it->second) out.push_back(e.meta);
  return out;
}

}  // namespace oda::ml
