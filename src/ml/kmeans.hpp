// k-means with k-means++ seeding: the clustering half of the Fig 10 job
// power-profile map (clusters over autoencoder embeddings).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "ml/feature.hpp"

namespace oda::ml {

struct KMeansConfig {
  std::size_t k = 8;
  std::size_t max_iters = 100;
  double tol = 1e-6;  ///< relative inertia improvement stop
};

class KMeans {
 public:
  explicit KMeans(KMeansConfig config) : config_(config) {}

  /// Fit on x; deterministic for a given rng state.
  void fit(const FeatureMatrix& x, common::Rng& rng);

  /// Nearest-centroid assignment.
  std::size_t predict_one(std::span<const double> row) const;
  std::vector<std::size_t> predict(const FeatureMatrix& x) const;

  double inertia() const { return inertia_; }
  std::size_t iterations() const { return iters_; }
  const FeatureMatrix& centroids() const { return centroids_; }
  std::size_t k() const { return config_.k; }

 private:
  KMeansConfig config_;
  FeatureMatrix centroids_;
  double inertia_ = 0.0;
  std::size_t iters_ = 0;
};

/// Cluster purity against ground-truth labels: sum over clusters of the
/// majority-label count, divided by n. 1.0 = clusters align with labels.
double cluster_purity(std::span<const std::size_t> assignments, std::span<const std::size_t> labels,
                      std::size_t k, std::size_t num_labels);

}  // namespace oda::ml
