#include "ml/profile_classifier.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace oda::ml {

std::vector<double> normalize_profile(std::span<const double> power, std::size_t target_len) {
  std::vector<double> out(target_len, 0.0);
  if (power.empty()) return out;
  // Linear-interpolation resample.
  for (std::size_t i = 0; i < target_len; ++i) {
    const double pos = target_len == 1
                           ? 0.0
                           : static_cast<double>(i) * static_cast<double>(power.size() - 1) /
                                 static_cast<double>(target_len - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, power.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    out[i] = (1.0 - frac) * power[lo] + frac * power[hi];
  }
  const double mx = *std::max_element(out.begin(), out.end());
  if (mx > 1e-9) {
    for (auto& v : out) v /= mx;
  }
  return out;
}

ProfileClassifier::ProfileClassifier(ProfileClassifierConfig config)
    : config_(config), kmeans_(KMeansConfig{config.clusters, 100, 1e-6}) {}

FeatureMatrix ProfileClassifier::profiles_to_matrix(const std::vector<JobProfile>& profiles) const {
  FeatureMatrix x(profiles.size(), config_.profile_length);
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const auto norm = normalize_profile(profiles[i].power_w, config_.profile_length);
    std::copy(norm.begin(), norm.end(), x.row(i).begin());
  }
  return x;
}

double ProfileClassifier::fit(const std::vector<JobProfile>& profiles, std::uint64_t seed) {
  if (profiles.empty()) throw std::invalid_argument("ProfileClassifier::fit: no profiles");
  common::Rng rng(seed);
  const FeatureMatrix x = profiles_to_matrix(profiles);

  autoencoder_ = make_autoencoder(config_.profile_length, config_.embedding_dim, config_.hidden, rng);
  autoencoder_.train(x, x, config_.train, rng);
  const double loss = autoencoder_.evaluate_loss(x, x, Loss::kMse);

  FeatureMatrix emb(x.rows(), config_.embedding_dim);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto e = autoencoder_.layer_output(x.row(r), autoencoder_bottleneck_layer());
    std::copy(e.begin(), e.end(), emb.row(r).begin());
  }
  kmeans_.fit(emb, rng);
  fitted_ = true;
  return loss;
}

std::vector<double> ProfileClassifier::embed(std::span<const double> power_w) const {
  const auto norm = normalize_profile(power_w, config_.profile_length);
  return autoencoder_.layer_output(norm, autoencoder_bottleneck_layer());
}

std::size_t ProfileClassifier::classify(std::span<const double> power_w) const {
  if (!fitted_) throw std::logic_error("ProfileClassifier: classify before fit");
  const auto e = embed(power_w);
  return kmeans_.predict_one(e);
}

std::vector<ClusterSummary> ProfileClassifier::summarize(const std::vector<JobProfile>& profiles) const {
  std::vector<ClusterSummary> out(kmeans_.k());
  for (std::size_t c = 0; c < out.size(); ++c) {
    out[c].cluster = c;
    out[c].mean_shape.assign(config_.profile_length, 0.0);
  }
  std::vector<std::map<std::size_t, std::size_t>> label_counts(kmeans_.k());
  for (const auto& p : profiles) {
    const auto norm = normalize_profile(p.power_w, config_.profile_length);
    const std::size_t c = kmeans_.predict_one(autoencoder_.layer_output(norm, autoencoder_bottleneck_layer()));
    out[c].population++;
    for (std::size_t i = 0; i < norm.size(); ++i) out[c].mean_shape[i] += norm[i];
    label_counts[c][p.true_archetype]++;
  }
  for (std::size_t c = 0; c < out.size(); ++c) {
    if (out[c].population == 0) continue;
    for (auto& v : out[c].mean_shape) v /= static_cast<double>(out[c].population);
    std::size_t best_label = 0, best_count = 0;
    for (const auto& [label, count] : label_counts[c]) {
      if (count > best_count) {
        best_count = count;
        best_label = label;
      }
    }
    out[c].majority_archetype = best_label;
    out[c].majority_fraction = static_cast<double>(best_count) / static_cast<double>(out[c].population);
  }
  return out;
}

double ProfileClassifier::purity(const std::vector<JobProfile>& profiles) const {
  std::vector<std::size_t> assignments, labels;
  assignments.reserve(profiles.size());
  labels.reserve(profiles.size());
  std::size_t max_label = 0;
  for (const auto& p : profiles) {
    assignments.push_back(classify(p.power_w));
    labels.push_back(p.true_archetype);
    max_label = std::max(max_label, p.true_archetype);
  }
  return cluster_purity(assignments, labels, kmeans_.k(), max_label + 1);
}

}  // namespace oda::ml
