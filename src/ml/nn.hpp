// A small, dependency-free neural network: dense layers, ReLU/tanh/
// identity/softmax activations, MSE and cross-entropy losses, SGD and
// Adam. Enough to implement the paper's neural job-power-profile
// classifier (Fig 10) and its autoencoder embedding, deterministically.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ml/feature.hpp"

namespace oda::ml {

enum class Activation : std::uint8_t { kIdentity = 0, kRelu = 1, kTanh = 2, kSigmoid = 3, kSoftmax = 4 };
enum class Loss : std::uint8_t { kMse = 0, kCrossEntropy = 1 };

struct LayerSpec {
  std::size_t units = 0;
  Activation activation = Activation::kRelu;
};

struct TrainConfig {
  std::size_t epochs = 50;
  std::size_t batch_size = 32;
  double learning_rate = 1e-3;
  bool adam = true;
  double l2 = 0.0;
  Loss loss = Loss::kMse;
  bool shuffle = true;
};

/// Fully connected feed-forward network.
class Mlp {
 public:
  /// `input_dim` then one LayerSpec per layer (last layer = output).
  Mlp(std::size_t input_dim, std::vector<LayerSpec> layers, common::Rng& rng);
  Mlp() = default;

  /// Forward pass for a single sample.
  std::vector<double> predict(std::span<const double> x) const;
  /// Forward for all rows.
  FeatureMatrix predict(const FeatureMatrix& x) const;

  /// Activations of layer `layer` (0-based) — used to read autoencoder
  /// bottleneck embeddings.
  std::vector<double> layer_output(std::span<const double> x, std::size_t layer) const;

  /// Train on (x, y); returns per-epoch mean loss.
  std::vector<double> train(const FeatureMatrix& x, const FeatureMatrix& y, const TrainConfig& config,
                            common::Rng& rng);

  double evaluate_loss(const FeatureMatrix& x, const FeatureMatrix& y, Loss loss) const;

  std::size_t input_dim() const { return input_dim_; }
  std::size_t output_dim() const { return layers_.empty() ? 0 : layers_.back().units; }
  std::size_t num_layers() const { return layers_.size(); }
  std::size_t parameter_count() const;

  /// Deterministic content hash of all parameters (reproducibility).
  std::uint64_t parameter_hash() const;

  std::vector<std::uint8_t> serialize() const;
  static Mlp deserialize(std::span<const std::uint8_t> data);

 private:
  struct Layer {
    std::size_t in = 0;
    std::size_t units = 0;
    Activation activation = Activation::kRelu;
    std::vector<double> w;  ///< units x in, row-major
    std::vector<double> b;  ///< units
    // Adam state.
    std::vector<double> mw, vw, mb, vb;
  };

  void forward(std::span<const double> x, std::vector<std::vector<double>>& acts) const;
  static void apply_activation(Activation a, std::vector<double>& z);
  static void activation_grad(Activation a, const std::vector<double>& out, std::vector<double>& delta);

  std::size_t input_dim_ = 0;
  std::vector<Layer> layers_;
  std::uint64_t adam_t_ = 0;
};

/// Convenience: symmetric autoencoder input->hidden...->bottleneck->...->input.
Mlp make_autoencoder(std::size_t input_dim, std::size_t bottleneck, std::size_t hidden,
                     common::Rng& rng);

/// Index of the bottleneck layer of make_autoencoder's topology.
std::size_t autoencoder_bottleneck_layer();

}  // namespace oda::ml
