#include "ml/forecast.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stats.hpp"

namespace oda::ml {

PowerForecaster::PowerForecaster(ForecasterConfig config) : config_(config) {}

void PowerForecaster::fit(std::span<const double> series, std::uint64_t seed) {
  const std::size_t need = config_.lags + config_.horizon + 1;
  if (series.size() < need) throw std::invalid_argument("PowerForecaster: series too short");
  common::Rng rng(seed);

  // Normalize to [0, 1]-ish by range (robust enough for power series).
  double mn = series[0], mx = series[0];
  for (double v : series) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  offset_ = mn;
  scale_ = std::max(1e-9, mx - mn);

  const std::size_t n = series.size() - config_.lags - config_.horizon + 1;
  FeatureMatrix x(n, config_.lags), y(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t l = 0; l < config_.lags; ++l) {
      x.at(i, l) = (series[i + l] - offset_) / scale_;
    }
    y.at(i, 0) = (series[i + config_.lags + config_.horizon - 1] - offset_) / scale_;
  }
  net_ = Mlp(config_.lags, {{config_.hidden, Activation::kTanh}, {1, Activation::kIdentity}}, rng);
  net_.train(x, y, config_.train, rng);
  fitted_ = true;
}

double PowerForecaster::predict(std::span<const double> recent) const {
  if (!fitted_) throw std::logic_error("PowerForecaster: predict before fit");
  if (recent.size() < config_.lags) throw std::invalid_argument("PowerForecaster: window too short");
  std::vector<double> in(config_.lags);
  const std::size_t start = recent.size() - config_.lags;
  for (std::size_t l = 0; l < config_.lags; ++l) in[l] = (recent[start + l] - offset_) / scale_;
  return net_.predict(in)[0] * scale_ + offset_;
}

ForecastEvaluation evaluate_forecaster(const ForecasterConfig& config, std::span<const double> series,
                                       double train_fraction, std::uint64_t seed) {
  ForecastEvaluation ev;
  const auto split = static_cast<std::size_t>(train_fraction * static_cast<double>(series.size()));
  if (split < config.lags + config.horizon + 1 || split >= series.size()) return ev;

  PowerForecaster model(config);
  model.fit(series.subspan(0, split), seed);

  std::vector<double> truth, pred, persist;
  for (std::size_t t = split; t + config.horizon - 1 < series.size(); ++t) {
    if (t < config.lags) continue;
    const auto window = series.subspan(t - config.lags, config.lags);
    truth.push_back(series[t + config.horizon - 1]);
    pred.push_back(model.predict(window));
    persist.push_back(series[t - 1]);  // baseline: last observed value
  }
  ev.samples = truth.size();
  ev.model_mape = common::mape(truth, pred);
  ev.persistence_mape = common::mape(truth, persist);
  return ev;
}

}  // namespace oda::ml
