// The Fig 10 pipeline: job power profiles → fixed-length resampled
// vectors → autoencoder embedding → k-means clusters → population map.
// "A neural network-based classifier automatically groups power profiles
// based on their similarities."
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "ml/kmeans.hpp"
#include "ml/nn.hpp"

namespace oda::ml {

/// A job's power profile: per-sample mean node power over its runtime.
struct JobProfile {
  std::int64_t job_id = 0;
  std::vector<double> power_w;  ///< time-ordered samples
  std::size_t true_archetype = 0;  ///< ground truth for V&V (simulator only)
};

struct ProfileClassifierConfig {
  std::size_t profile_length = 64;  ///< resample target length
  std::size_t embedding_dim = 4;
  std::size_t hidden = 32;
  std::size_t clusters = 8;
  TrainConfig train;

  ProfileClassifierConfig() {
    train.epochs = 60;
    train.batch_size = 16;
    train.learning_rate = 2e-3;
  }
};

/// Resample a variable-length profile to `target_len` points and
/// scale to [0,1] by its own max (shape, not magnitude, clusters jobs).
std::vector<double> normalize_profile(std::span<const double> power, std::size_t target_len);

struct ClusterSummary {
  std::size_t cluster = 0;
  std::size_t population = 0;
  std::vector<double> mean_shape;       ///< centroid decoded back to profile space
  std::size_t majority_archetype = 0;   ///< dominant ground-truth label
  double majority_fraction = 0.0;
};

class ProfileClassifier {
 public:
  explicit ProfileClassifier(ProfileClassifierConfig config = {});

  /// Train autoencoder + k-means on the given profiles. Deterministic
  /// for a fixed seed. Returns final reconstruction loss.
  double fit(const std::vector<JobProfile>& profiles, std::uint64_t seed);

  /// Cluster id of a (new) profile.
  std::size_t classify(std::span<const double> power_w) const;

  /// Embedding of a profile (bottleneck activations).
  std::vector<double> embed(std::span<const double> power_w) const;

  /// Cluster population map over a set of profiles — the Fig 10 grid.
  std::vector<ClusterSummary> summarize(const std::vector<JobProfile>& profiles) const;

  /// Purity of cluster assignments vs planted archetypes.
  double purity(const std::vector<JobProfile>& profiles) const;

  const Mlp& autoencoder() const { return autoencoder_; }
  const KMeans& kmeans() const { return kmeans_; }
  const ProfileClassifierConfig& config() const { return config_; }

 private:
  FeatureMatrix profiles_to_matrix(const std::vector<JobProfile>& profiles) const;

  ProfileClassifierConfig config_;
  Mlp autoencoder_;
  KMeans kmeans_;
  bool fitted_ = false;
};

}  // namespace oda::ml
