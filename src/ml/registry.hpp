// ML engineering plumbing of Fig 9: a versioned feature store (the DVC
// role), an experiment tracker and a model registry (the MLflow role).
// All content-hashed so "repeatable, reproducible ML model development"
// is checkable, not aspirational.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "ml/feature.hpp"

namespace oda::ml {

/// DVC-like: named, versioned feature matrices with content hashes.
class FeatureStore {
 public:
  struct Version {
    std::uint32_t version = 0;
    std::uint64_t content_hash = 0;
    common::TimePoint created = 0;
    std::size_t rows = 0;
    std::size_t cols = 0;
  };

  /// Commit a new version; returns its version number. Identical content
  /// re-commit returns the existing version (dedup).
  std::uint32_t commit(const std::string& name, FeatureMatrix features, common::TimePoint now);

  std::optional<FeatureMatrix> get(const std::string& name, std::uint32_t version) const;
  std::optional<FeatureMatrix> latest(const std::string& name) const;
  std::vector<Version> history(const std::string& name) const;

 private:
  struct Entry {
    Version meta;
    FeatureMatrix features;
  };
  mutable std::mutex mu_;
  std::map<std::string, std::vector<Entry>> store_;
};

/// MLflow-like experiment tracking: runs with params, metrics, artifacts.
class ExperimentTracker {
 public:
  struct Run {
    std::uint64_t run_id = 0;
    std::string experiment;
    common::TimePoint started = 0;
    std::map<std::string, std::string> params;
    std::map<std::string, double> metrics;
  };

  std::uint64_t start_run(const std::string& experiment, common::TimePoint now);
  void log_param(std::uint64_t run_id, const std::string& key, const std::string& value);
  void log_metric(std::uint64_t run_id, const std::string& key, double value);
  std::optional<Run> get_run(std::uint64_t run_id) const;
  std::vector<Run> runs(const std::string& experiment) const;
  /// Best run by a metric (higher is better when `maximize`).
  std::optional<Run> best_run(const std::string& experiment, const std::string& metric,
                              bool maximize = true) const;

 private:
  mutable std::mutex mu_;
  std::map<std::uint64_t, Run> runs_;
  std::uint64_t next_id_ = 1;
};

/// MLflow-like model registry: versioned serialized models + stage tags.
class ModelRegistry {
 public:
  enum class Stage { kNone, kStaging, kProduction, kArchived };

  struct ModelVersion {
    std::string name;
    std::uint32_t version = 0;
    std::uint64_t content_hash = 0;
    common::TimePoint registered = 0;
    Stage stage = Stage::kNone;
    std::map<std::string, double> metrics;
  };

  std::uint32_t register_model(const std::string& name, std::vector<std::uint8_t> bytes,
                               std::map<std::string, double> metrics, common::TimePoint now);

  std::optional<std::vector<std::uint8_t>> load(const std::string& name, std::uint32_t version) const;
  /// Latest version in Production stage (inference default), else nullopt.
  std::optional<std::vector<std::uint8_t>> load_production(const std::string& name) const;
  void transition(const std::string& name, std::uint32_t version, Stage stage);
  std::vector<ModelVersion> versions(const std::string& name) const;

 private:
  struct Entry {
    ModelVersion meta;
    std::vector<std::uint8_t> bytes;
  };
  mutable std::mutex mu_;
  std::map<std::string, std::vector<Entry>> models_;
};

}  // namespace oda::ml
