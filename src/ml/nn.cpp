#include "ml/nn.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/bytes.hpp"

namespace oda::ml {

Mlp::Mlp(std::size_t input_dim, std::vector<LayerSpec> layers, common::Rng& rng) : input_dim_(input_dim) {
  std::size_t in = input_dim;
  layers_.reserve(layers.size());
  for (const auto& spec : layers) {
    Layer layer;
    layer.in = in;
    layer.units = spec.units;
    layer.activation = spec.activation;
    layer.w.resize(spec.units * in);
    layer.b.assign(spec.units, 0.0);
    // He/Xavier-ish init scaled by fan-in.
    const double scale = std::sqrt(2.0 / static_cast<double>(in));
    for (auto& w : layer.w) w = scale * rng.normal();
    layer.mw.assign(layer.w.size(), 0.0);
    layer.vw.assign(layer.w.size(), 0.0);
    layer.mb.assign(layer.b.size(), 0.0);
    layer.vb.assign(layer.b.size(), 0.0);
    layers_.push_back(std::move(layer));
    in = spec.units;
  }
}

void Mlp::apply_activation(Activation a, std::vector<double>& z) {
  switch (a) {
    case Activation::kIdentity:
      break;
    case Activation::kRelu:
      for (auto& v : z) v = std::max(0.0, v);
      break;
    case Activation::kTanh:
      for (auto& v : z) v = std::tanh(v);
      break;
    case Activation::kSigmoid:
      for (auto& v : z) v = 1.0 / (1.0 + std::exp(-v));
      break;
    case Activation::kSoftmax: {
      const double mx = *std::max_element(z.begin(), z.end());
      double sum = 0.0;
      for (auto& v : z) {
        v = std::exp(v - mx);
        sum += v;
      }
      for (auto& v : z) v /= sum;
      break;
    }
  }
}

void Mlp::activation_grad(Activation a, const std::vector<double>& out, std::vector<double>& delta) {
  switch (a) {
    case Activation::kIdentity:
    case Activation::kSoftmax:  // combined with cross-entropy upstream
      break;
    case Activation::kRelu:
      for (std::size_t i = 0; i < delta.size(); ++i) {
        if (out[i] <= 0.0) delta[i] = 0.0;
      }
      break;
    case Activation::kTanh:
      for (std::size_t i = 0; i < delta.size(); ++i) delta[i] *= 1.0 - out[i] * out[i];
      break;
    case Activation::kSigmoid:
      for (std::size_t i = 0; i < delta.size(); ++i) delta[i] *= out[i] * (1.0 - out[i]);
      break;
  }
}

void Mlp::forward(std::span<const double> x, std::vector<std::vector<double>>& acts) const {
  acts.resize(layers_.size());
  const double* in = x.data();
  std::size_t in_size = x.size();
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& l = layers_[li];
    auto& out = acts[li];
    out.assign(l.units, 0.0);
    for (std::size_t u = 0; u < l.units; ++u) {
      const double* w = &l.w[u * l.in];
      double acc = l.b[u];
      for (std::size_t i = 0; i < in_size; ++i) acc += w[i] * in[i];
      out[u] = acc;
    }
    apply_activation(l.activation, out);
    in = out.data();
    in_size = out.size();
  }
}

std::vector<double> Mlp::predict(std::span<const double> x) const {
  std::vector<std::vector<double>> acts;
  forward(x, acts);
  return acts.empty() ? std::vector<double>(x.begin(), x.end()) : acts.back();
}

FeatureMatrix Mlp::predict(const FeatureMatrix& x) const {
  FeatureMatrix out(x.rows(), output_dim());
  std::vector<std::vector<double>> acts;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    forward(x.row(r), acts);
    const auto& y = acts.back();
    std::copy(y.begin(), y.end(), out.row(r).begin());
  }
  return out;
}

std::vector<double> Mlp::layer_output(std::span<const double> x, std::size_t layer) const {
  std::vector<std::vector<double>> acts;
  forward(x, acts);
  return acts.at(layer);
}

std::vector<double> Mlp::train(const FeatureMatrix& x, const FeatureMatrix& y, const TrainConfig& config,
                               common::Rng& rng) {
  if (x.rows() != y.rows()) throw std::invalid_argument("Mlp::train: x/y row mismatch");
  const std::size_t n = x.rows();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  std::vector<double> epoch_losses;
  epoch_losses.reserve(config.epochs);

  std::vector<std::vector<double>> acts;
  std::vector<std::vector<double>> deltas(layers_.size());
  // Accumulated gradients per batch.
  std::vector<std::vector<double>> gw(layers_.size()), gb(layers_.size());
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    gw[li].assign(layers_[li].w.size(), 0.0);
    gb[li].assign(layers_[li].b.size(), 0.0);
  }

  constexpr double kBeta1 = 0.9, kBeta2 = 0.999, kEps = 1e-8;

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    if (config.shuffle) {
      for (std::size_t i = n; i > 1; --i) std::swap(order[i - 1], order[rng.uniform_index(i)]);
    }
    double epoch_loss = 0.0;
    for (std::size_t start = 0; start < n; start += config.batch_size) {
      const std::size_t end = std::min(n, start + config.batch_size);
      const auto bsz = static_cast<double>(end - start);
      for (auto& g : gw) std::fill(g.begin(), g.end(), 0.0);
      for (auto& g : gb) std::fill(g.begin(), g.end(), 0.0);

      for (std::size_t bi = start; bi < end; ++bi) {
        const std::size_t r = order[bi];
        forward(x.row(r), acts);
        const auto& out = acts.back();
        const auto target = y.row(r);

        // Output delta: for (softmax, CE) and (identity/any, MSE), the
        // combined gradient is (out - target).
        auto& dlast = deltas.back();
        dlast.assign(out.size(), 0.0);
        for (std::size_t i = 0; i < out.size(); ++i) dlast[i] = out[i] - target[i];
        if (config.loss == Loss::kMse) {
          epoch_loss += 0.5 * std::inner_product(dlast.begin(), dlast.end(), dlast.begin(), 0.0);
          activation_grad(layers_.back().activation, out, dlast);
        } else {
          for (std::size_t i = 0; i < out.size(); ++i) {
            if (target[i] > 0.0) epoch_loss -= target[i] * std::log(std::max(out[i], 1e-12));
          }
        }

        // Backprop.
        for (std::size_t li = layers_.size(); li-- > 0;) {
          const Layer& l = layers_[li];
          const auto& delta = deltas[li];
          const double* input = li == 0 ? x.row(r).data() : acts[li - 1].data();
          double* gwl = gw[li].data();
          for (std::size_t u = 0; u < l.units; ++u) {
            const double d = delta[u];
            gb[li][u] += d;
            double* row_g = &gwl[u * l.in];
            for (std::size_t i = 0; i < l.in; ++i) row_g[i] += d * input[i];
          }
          if (li > 0) {
            auto& dprev = deltas[li - 1];
            dprev.assign(l.in, 0.0);
            for (std::size_t u = 0; u < l.units; ++u) {
              const double d = delta[u];
              const double* wrow = &l.w[u * l.in];
              for (std::size_t i = 0; i < l.in; ++i) dprev[i] += d * wrow[i];
            }
            activation_grad(layers_[li - 1].activation, acts[li - 1], dprev);
          }
        }
      }

      // Apply update.
      ++adam_t_;
      for (std::size_t li = 0; li < layers_.size(); ++li) {
        Layer& l = layers_[li];
        auto update = [&](std::vector<double>& param, std::vector<double>& grad, std::vector<double>& m,
                          std::vector<double>& v) {
          for (std::size_t i = 0; i < param.size(); ++i) {
            double g = grad[i] / bsz + config.l2 * param[i];
            if (config.adam) {
              m[i] = kBeta1 * m[i] + (1 - kBeta1) * g;
              v[i] = kBeta2 * v[i] + (1 - kBeta2) * g * g;
              const double mhat = m[i] / (1 - std::pow(kBeta1, static_cast<double>(adam_t_)));
              const double vhat = v[i] / (1 - std::pow(kBeta2, static_cast<double>(adam_t_)));
              param[i] -= config.learning_rate * mhat / (std::sqrt(vhat) + kEps);
            } else {
              param[i] -= config.learning_rate * g;
            }
          }
        };
        update(l.w, gw[li], l.mw, l.vw);
        update(l.b, gb[li], l.mb, l.vb);
      }
    }
    epoch_losses.push_back(epoch_loss / static_cast<double>(n));
  }
  return epoch_losses;
}

double Mlp::evaluate_loss(const FeatureMatrix& x, const FeatureMatrix& y, Loss loss) const {
  double total = 0.0;
  std::vector<std::vector<double>> acts;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    forward(x.row(r), acts);
    const auto& out = acts.back();
    const auto target = y.row(r);
    if (loss == Loss::kMse) {
      for (std::size_t i = 0; i < out.size(); ++i) {
        const double d = out[i] - target[i];
        total += 0.5 * d * d;
      }
    } else {
      for (std::size_t i = 0; i < out.size(); ++i) {
        if (target[i] > 0.0) total -= target[i] * std::log(std::max(out[i], 1e-12));
      }
    }
  }
  return x.rows() ? total / static_cast<double>(x.rows()) : 0.0;
}

std::size_t Mlp::parameter_count() const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l.w.size() + l.b.size();
  return n;
}

std::uint64_t Mlp::parameter_hash() const {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& l : layers_) {
    h = common::fnv1a(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(l.w.data()),
                                                    l.w.size() * sizeof(double)),
                      h);
    h = common::fnv1a(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(l.b.data()),
                                                    l.b.size() * sizeof(double)),
                      h);
  }
  return h;
}

std::vector<std::uint8_t> Mlp::serialize() const {
  common::ByteWriter w;
  w.varint(input_dim_);
  w.varint(layers_.size());
  for (const auto& l : layers_) {
    w.varint(l.in);
    w.varint(l.units);
    w.u8(static_cast<std::uint8_t>(l.activation));
    for (double v : l.w) w.f64(v);
    for (double v : l.b) w.f64(v);
  }
  return w.take();
}

Mlp Mlp::deserialize(std::span<const std::uint8_t> data) {
  common::ByteReader r(data);
  Mlp m;
  m.input_dim_ = r.varint();
  const std::uint64_t nl = r.varint();
  m.layers_.resize(nl);
  for (auto& l : m.layers_) {
    l.in = r.varint();
    l.units = r.varint();
    l.activation = static_cast<Activation>(r.u8());
    l.w.resize(l.units * l.in);
    for (auto& v : l.w) v = r.f64();
    l.b.resize(l.units);
    for (auto& v : l.b) v = r.f64();
    l.mw.assign(l.w.size(), 0.0);
    l.vw.assign(l.w.size(), 0.0);
    l.mb.assign(l.b.size(), 0.0);
    l.vb.assign(l.b.size(), 0.0);
  }
  return m;
}

Mlp make_autoencoder(std::size_t input_dim, std::size_t bottleneck, std::size_t hidden, common::Rng& rng) {
  return Mlp(input_dim,
             {
                 {hidden, Activation::kTanh},
                 {bottleneck, Activation::kTanh},
                 {hidden, Activation::kTanh},
                 {input_dim, Activation::kIdentity},
             },
             rng);
}

std::size_t autoencoder_bottleneck_layer() { return 1; }

}  // namespace oda::ml
