#include "ml/feature.hpp"

#include <cmath>
#include <cstring>

#include "common/bytes.hpp"

namespace oda::ml {

std::uint64_t FeatureMatrix::content_hash() const {
  std::uint64_t h = common::fnv1a(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data_.data()), data_.size() * sizeof(double)));
  h = common::fnv1a(std::to_string(rows_) + "x" + std::to_string(cols_), h);
  for (const auto& n : names_) h = common::fnv1a(n, h);
  return h;
}

FeatureMatrix table_to_matrix(const sql::Table& t, const std::vector<std::string>& columns) {
  std::vector<std::size_t> cols;
  std::vector<std::string> names;
  if (columns.empty()) {
    for (std::size_t c = 0; c < t.num_columns(); ++c) {
      const auto ty = t.column(c).type();
      if (ty == sql::DataType::kFloat64 || ty == sql::DataType::kInt64) {
        cols.push_back(c);
        names.push_back(t.schema().field(c).name);
      }
    }
  } else {
    for (const auto& name : columns) {
      cols.push_back(t.col_index(name));
      names.push_back(name);
    }
  }
  FeatureMatrix m(t.num_rows(), cols.size(), std::move(names));
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    for (std::size_t c = 0; c < cols.size(); ++c) {
      const auto& col = t.column(cols[c]);
      m.at(r, c) = col.is_null(r) ? 0.0 : col.double_at(r);
    }
  }
  return m;
}

void StandardScaler::fit(const FeatureMatrix& x) {
  mean_.assign(x.cols(), 0.0);
  std_.assign(x.cols(), 0.0);
  if (x.rows() == 0) return;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) mean_[c] += x.at(r, c);
  }
  for (auto& m : mean_) m /= static_cast<double>(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const double d = x.at(r, c) - mean_[c];
      std_[c] += d * d;
    }
  }
  for (auto& s : std_) {
    s = std::sqrt(s / static_cast<double>(x.rows()));
    if (s < 1e-12) s = 1.0;  // constant column: leave centered
  }
}

void StandardScaler::transform(FeatureMatrix& x) const {
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) x.at(r, c) = (x.at(r, c) - mean_[c]) / std_[c];
  }
}

TrainTestSplit train_test_split(std::size_t n, double test_fraction, common::Rng& rng) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  // Fisher-Yates.
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.uniform_index(i);
    std::swap(idx[i - 1], idx[j]);
  }
  const auto n_test = static_cast<std::size_t>(test_fraction * static_cast<double>(n));
  TrainTestSplit split;
  split.test.assign(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(n_test));
  split.train.assign(idx.begin() + static_cast<std::ptrdiff_t>(n_test), idx.end());
  return split;
}

FeatureMatrix take_rows(const FeatureMatrix& x, std::span<const std::size_t> idx) {
  FeatureMatrix out(idx.size(), x.cols(), x.names());
  for (std::size_t r = 0; r < idx.size(); ++r) {
    const auto src = x.row(idx[r]);
    std::memcpy(out.row(r).data(), src.data(), src.size() * sizeof(double));
  }
  return out;
}

}  // namespace oda::ml
