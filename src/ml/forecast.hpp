// Short-horizon power forecasting (the use case of refs [19][20]:
// "forecasting power-efficiency related key performance indicators").
// An autoregressive MLP over lagged samples, evaluated against the
// persistence baseline every forecasting paper must beat.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/nn.hpp"

namespace oda::ml {

struct ForecasterConfig {
  std::size_t lags = 24;     ///< input window length (samples)
  std::size_t horizon = 4;   ///< steps ahead to predict
  std::size_t hidden = 24;
  TrainConfig train;

  ForecasterConfig() {
    train.epochs = 120;
    train.batch_size = 32;
    train.learning_rate = 2e-3;
  }
};

class PowerForecaster {
 public:
  explicit PowerForecaster(ForecasterConfig config = {});

  /// Train on a regularly sampled series. Requires
  /// series.size() > lags + horizon. Deterministic per seed.
  void fit(std::span<const double> series, std::uint64_t seed);

  /// Predict the value `horizon` steps after the window's last sample.
  /// `recent` must contain at least `lags` samples (uses the last lags).
  double predict(std::span<const double> recent) const;

  const ForecasterConfig& config() const { return config_; }

 private:
  ForecasterConfig config_;
  Mlp net_;
  double scale_ = 1.0;  ///< series normalization
  double offset_ = 0.0;
  bool fitted_ = false;
};

struct ForecastEvaluation {
  double model_mape = 0.0;
  double persistence_mape = 0.0;  ///< "tomorrow = today" baseline
  std::size_t samples = 0;

  double improvement() const {
    return persistence_mape > 0 ? 1.0 - model_mape / persistence_mape : 0.0;
  }
};

/// Walk-forward evaluation over the tail of a series: train on the first
/// `train_fraction`, then roll through the rest comparing the model and
/// the persistence baseline at the configured horizon.
ForecastEvaluation evaluate_forecaster(const ForecasterConfig& config, std::span<const double> series,
                                       double train_fraction, std::uint64_t seed);

}  // namespace oda::ml
