#include "common/time.hpp"

#include <cmath>
#include <cstdio>

namespace oda::common {

std::string format_time(TimePoint t) {
  const bool neg = t < 0;
  if (neg) t = -t;
  const std::int64_t total_ms = t / kMillisecond;
  const std::int64_t ms = total_ms % 1000;
  const std::int64_t total_s = total_ms / 1000;
  const std::int64_t s = total_s % 60;
  const std::int64_t m = (total_s / 60) % 60;
  const std::int64_t h = (total_s / 3600) % 24;
  const std::int64_t d = total_s / 86400;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%lld+%02lld:%02lld:%02lld.%03lld", neg ? "-" : "",
                static_cast<long long>(d), static_cast<long long>(h), static_cast<long long>(m),
                static_cast<long long>(s), static_cast<long long>(ms));
  return buf;
}

std::string format_duration(Duration d) {
  const bool neg = d < 0;
  const double abs_us = static_cast<double>(neg ? -d : d);
  char buf[64];
  const char* sign = neg ? "-" : "";
  if (abs_us < 1e3) {
    std::snprintf(buf, sizeof(buf), "%s%.0fus", sign, abs_us);
  } else if (abs_us < 1e6) {
    std::snprintf(buf, sizeof(buf), "%s%.1fms", sign, abs_us / 1e3);
  } else if (abs_us < 120e6) {
    std::snprintf(buf, sizeof(buf), "%s%.1fs", sign, abs_us / 1e6);
  } else if (abs_us < 7200e6) {
    std::snprintf(buf, sizeof(buf), "%s%.1fmin", sign, abs_us / 60e6);
  } else if (abs_us < 48.0 * 3600e6) {
    std::snprintf(buf, sizeof(buf), "%s%.1fh", sign, abs_us / 3600e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%s%.1fd", sign, abs_us / 86400e6);
  }
  return buf;
}

}  // namespace oda::common
