// Time primitives shared across the ODA framework.
//
// All telemetry, broker offsets, retention policies and window operators
// work on a single monotonic facility timeline expressed in microseconds
// since the simulation epoch. Wall-clock time never appears in the data
// path; benches measure wall time separately via std::chrono::steady_clock.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace oda::common {

/// Microseconds since simulation epoch. Signed so that differences are safe.
using TimePoint = std::int64_t;
/// Duration in microseconds.
using Duration = std::int64_t;

inline constexpr Duration kMicrosecond = 1;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;
inline constexpr Duration kDay = 24 * kHour;

constexpr double to_seconds(Duration d) { return static_cast<double>(d) / static_cast<double>(kSecond); }
constexpr Duration from_seconds(double s) { return static_cast<Duration>(s * static_cast<double>(kSecond)); }

/// Truncate `t` down to a multiple of `bucket` (tumbling-window start).
/// Saturates at INT64_MIN instead of wrapping: for t near the bottom of
/// the timeline the floor correction `w - bucket` would overflow (UB), so
/// the window start clamps to the timeline edge. Queries with
/// t1 = INT64_MAX and a nonzero step rely on this being well-defined.
constexpr TimePoint window_start(TimePoint t, Duration bucket) {
  if (bucket <= 0) return t;
  TimePoint w = t / bucket * bucket;
  if (t < 0 && w > t) {  // floor, not trunc, for negative times
    if (w >= INT64_MIN + bucket) {
      w -= bucket;
    } else {
      w = INT64_MIN;  // saturate: can't represent the true floor
    }
  }
  return w;
}

/// Render a timepoint as "D+HH:MM:SS.mmm" relative to the simulation epoch.
std::string format_time(TimePoint t);
/// Render a duration compactly, e.g. "15s", "4.2ms", "36h".
std::string format_duration(Duration d);

/// The facility's simulated clock. Advancing it is explicit: the
/// orchestrator ticks it, sources sample it. Deterministic by design.
class SimClock {
 public:
  explicit SimClock(TimePoint start = 0) : now_(start) {}

  TimePoint now() const { return now_; }
  void advance(Duration d) { now_ += d; }
  void advance_to(TimePoint t) {
    if (t > now_) now_ = t;
  }

 private:
  TimePoint now_;
};

/// Wall-clock stopwatch for bench/report instrumentation.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }
  double elapsed_us() const { return elapsed_seconds() * 1e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace oda::common
