// oda::chaos — deterministic infrastructure fault injection and retry.
//
// The paper's operational lesson (Sec V) is that ODA pipelines live on
// lossy, bursty, partially-failing infrastructure: collection gaps,
// broker backlogs, storage-tier hiccups. This header provides the seam
// that lets tests reproduce those conditions on demand:
//
//   - FaultPlan: a seeded, per-site schedule of transient errors, hard
//     failures and latency spikes. Installed globally; every instrumented
//     call path ("site") consults it through fault_point(). Runs are
//     reproducible: each site draws from its own Rng stream derived from
//     the plan seed, so the same seed yields the same fault schedule.
//   - RetryPolicy / Retrier: bounded retry with exponential backoff and
//     jitter. Backoff is *virtual* (accounted, not slept) so chaos tests
//     stay fast and deterministic.
//
// Instrumented sites (grep for chaos::fault_point):
//   stream.produce     Topic::produce (broker ingest)
//   stream.fetch       Partition::fetch (broker read path)
//   ocean.put          ObjectStore::put
//   ocean.get          ObjectStore::get
//   tiers.migrate      TierManager OCEAN->GLACIER migration unit
//   telemetry.collect  CollectionChannel delivery (collector -> broker)
//   pipeline.batch     StreamingQuery micro-batch body
//   pipeline.sink      OceanSink / TopicSink external writes
//
// Sites fail *before* their side effect (a rejected/timed-out request),
// so a retried call never double-applies. When no plan is installed the
// cost of a site is one atomic load and a predictable branch.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace oda::chaos {

/// A retryable infrastructure error (timeout, backlog, flaky link).
class TransientFault : public std::runtime_error {
 public:
  explicit TransientFault(std::string_view site)
      : std::runtime_error("transient fault at " + std::string(site)) {}
};

/// A non-retryable failure (corrupt volume, fenced broker). Retriers
/// rethrow these immediately; callers must degrade, not spin.
class HardFault : public std::runtime_error {
 public:
  explicit HardFault(std::string_view site)
      : std::runtime_error("hard fault at " + std::string(site)) {}
};

/// Thrown by Retrier when the attempt/deadline budget is exhausted.
class RetriesExhausted : public std::runtime_error {
 public:
  RetriesExhausted(std::string_view what, std::size_t attempts, const std::string& last)
      : std::runtime_error("retries exhausted for " + std::string(what) + " after " +
                           std::to_string(attempts) + " attempts: " + last) {}
};

/// Per-site fault schedule. Probabilities are evaluated per visit in a
/// fixed order (hard, transient, latency) from the site's own Rng stream.
struct SiteConfig {
  double transient_p = 0.0;  ///< probability of a retryable TransientFault
  double hard_p = 0.0;       ///< probability of a non-retryable HardFault
  double latency_p = 0.0;    ///< probability of a (virtual) latency spike
  common::Duration latency = 20 * common::kMillisecond;  ///< spike size
  std::uint64_t skip_first = 0;  ///< visits before injection starts (warmup)
  std::uint64_t every_nth = 0;   ///< also fault deterministically every Nth visit (0 = off)
  std::uint64_t max_faults = UINT64_MAX;  ///< total fault budget for the site
};

struct SiteStats {
  std::uint64_t visits = 0;
  std::uint64_t transient_faults = 0;
  std::uint64_t hard_faults = 0;
  std::uint64_t latency_spikes = 0;
  common::Duration injected_latency = 0;
};

/// A seeded fault schedule over named sites. Thread-safe: inject() takes
/// an internal lock, so concurrent visitors are allowed (their interleaving
/// is then what decides which visit faults — single-threaded drivers are
/// fully reproducible).
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  /// Configure one site by exact name.
  void configure(const std::string& site, SiteConfig cfg);
  /// Fallback config for any visited site without an explicit entry.
  void configure_default(SiteConfig cfg);

  /// Called by fault_point(). Throws TransientFault / HardFault per the
  /// site's schedule; latency spikes only accumulate in stats.
  void inject(std::string_view site);

  SiteStats site_stats(std::string_view site) const;
  std::map<std::string, SiteStats> all_stats() const;
  std::uint64_t total_faults() const;

 private:
  struct SiteState {
    SiteConfig cfg;
    common::Rng rng;
    SiteStats stats;
    bool enabled = false;  ///< has a config (explicit or default)
  };
  SiteState& state_for(std::string_view site);  // callers hold mu_

  mutable std::mutex mu_;
  std::uint64_t seed_;
  std::optional<SiteConfig> default_cfg_;
  std::map<std::string, SiteState, std::less<>> sites_;
};

/// Observer interface for fault/retry events — the seam that lets the
/// observe layer count chaos activity without common depending on it.
/// Implementations must be cheap and non-throwing (called from hot paths
/// and from inside exception dispatch).
class FaultObserver {
 public:
  virtual ~FaultObserver() = default;
  /// kind: "transient", "hard" or "latency".
  virtual void on_fault(std::string_view site, std::string_view kind) = 0;
  virtual void on_retry(std::string_view what, common::Duration backoff) = 0;
  virtual void on_exhausted(std::string_view what) = 0;
};

namespace detail {
extern std::atomic<FaultPlan*> g_fault_plan;
extern std::atomic<FaultObserver*> g_fault_observer;

inline void notify_fault(std::string_view site, std::string_view kind) {
  FaultObserver* o = g_fault_observer.load(std::memory_order_acquire);
  if (o != nullptr) o->on_fault(site, kind);
}
inline void notify_retry(std::string_view what, common::Duration backoff) {
  FaultObserver* o = g_fault_observer.load(std::memory_order_acquire);
  if (o != nullptr) o->on_retry(what, backoff);
}
inline void notify_exhausted(std::string_view what) {
  FaultObserver* o = g_fault_observer.load(std::memory_order_acquire);
  if (o != nullptr) o->on_exhausted(what);
}
}  // namespace detail

/// Install (or with nullptr, remove) the process-wide fault observer.
inline void install_fault_observer(FaultObserver* o) {
  detail::g_fault_observer.store(o, std::memory_order_release);
}
inline FaultObserver* installed_fault_observer() {
  return detail::g_fault_observer.load(std::memory_order_acquire);
}

/// Install (or with nullptr, remove) the process-wide fault plan.
inline void install_fault_plan(FaultPlan* plan) {
  detail::g_fault_plan.store(plan, std::memory_order_release);
}
inline FaultPlan* installed_fault_plan() {
  return detail::g_fault_plan.load(std::memory_order_acquire);
}

/// The per-site hook threaded through the hot seams. One atomic load and
/// a never-taken branch when no plan is installed.
inline void fault_point(std::string_view site) {
  FaultPlan* plan = detail::g_fault_plan.load(std::memory_order_acquire);
  if (plan != nullptr) [[unlikely]]
    plan->inject(site);
}

/// RAII plan installation for tests.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan& plan) { install_fault_plan(&plan); }
  ~ScopedFaultPlan() { install_fault_plan(nullptr); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

// --- retry with exponential backoff --------------------------------------

struct RetryPolicy {
  std::size_t max_attempts = 5;  ///< total attempts (first call included)
  common::Duration base_backoff = 10 * common::kMillisecond;
  double multiplier = 2.0;
  common::Duration max_backoff = 5 * common::kSecond;
  double jitter = 0.5;  ///< backoff drawn uniformly in [b*(1-j), b*(1+j)]
  /// Total (virtual) backoff budget across one run(); 0 = unlimited.
  common::Duration deadline = 0;
};

struct RetryStats {
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;    ///< attempts beyond the first, summed over runs
  std::uint64_t exhausted = 0;  ///< run() calls that gave up
  common::Duration backoff_total = 0;  ///< virtual time spent backing off
};

/// Executes callables under a RetryPolicy. TransientFault retries with
/// backoff; HardFault and every other exception propagate immediately;
/// budget exhaustion throws RetriesExhausted. Backoff is virtual: it is
/// recorded in stats() but never slept, keeping tests fast while the
/// deadline arithmetic still bites.
class Retrier {
 public:
  explicit Retrier(RetryPolicy policy = {}, std::uint64_t seed = 0x5eedb0ffull)
      : policy_(policy), rng_(seed) {}

  void set_policy(const RetryPolicy& p) { policy_ = p; }
  const RetryPolicy& policy() const { return policy_; }
  const RetryStats& stats() const { return stats_; }

  /// Run `fn`, retrying on TransientFault. `on_retry` runs before each
  /// replay — the place to restore preconditions (e.g. rewind a consumer
  /// whose poll advanced partway before faulting).
  template <typename F, typename G>
  auto run(std::string_view what, F&& fn, G&& on_retry) -> std::invoke_result_t<F&> {
    common::Duration spent = 0;
    for (std::size_t attempt = 1;; ++attempt) {
      ++stats_.attempts;
      try {
        return fn();
      } catch (const TransientFault& e) {
        if (attempt >= policy_.max_attempts) {
          ++stats_.exhausted;
          detail::notify_exhausted(what);
          throw RetriesExhausted(what, attempt, e.what());
        }
        const common::Duration b = backoff_for(attempt);
        if (policy_.deadline > 0 && spent + b > policy_.deadline) {
          ++stats_.exhausted;
          detail::notify_exhausted(what);
          throw RetriesExhausted(what, attempt, e.what());
        }
        spent += b;
        stats_.backoff_total += b;
        ++stats_.retries;
        detail::notify_retry(what, b);
        on_retry();
      }
    }
  }

  template <typename F>
  auto run(std::string_view what, F&& fn) -> std::invoke_result_t<F&> {
    return run(what, std::forward<F>(fn), [] {});
  }

  /// Backoff for the given 1-based attempt: exponential, clamped, jittered.
  common::Duration backoff_for(std::size_t attempt) {
    double b = static_cast<double>(policy_.base_backoff);
    for (std::size_t i = 1; i < attempt; ++i) {
      b *= policy_.multiplier;
      if (b >= static_cast<double>(policy_.max_backoff)) break;
    }
    b = std::min(b, static_cast<double>(policy_.max_backoff));
    if (policy_.jitter > 0.0) b *= rng_.uniform(1.0 - policy_.jitter, 1.0 + policy_.jitter);
    return static_cast<common::Duration>(b);
  }

 private:
  RetryPolicy policy_;
  common::Rng rng_;
  RetryStats stats_;
};

}  // namespace oda::chaos
