#include "common/faults.hpp"

#include "common/bytes.hpp"

namespace oda::chaos {

namespace detail {
std::atomic<FaultPlan*> g_fault_plan{nullptr};
std::atomic<FaultObserver*> g_fault_observer{nullptr};
}

void FaultPlan::configure(const std::string& site, SiteConfig cfg) {
  std::lock_guard lk(mu_);
  SiteState& s = sites_[site];
  s.cfg = cfg;
  s.enabled = true;
  s.rng = common::Rng(seed_ ^ common::fnv1a(site));
}

void FaultPlan::configure_default(SiteConfig cfg) {
  std::lock_guard lk(mu_);
  default_cfg_ = cfg;
}

FaultPlan::SiteState& FaultPlan::state_for(std::string_view site) {
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    it = sites_.emplace(std::string(site), SiteState{}).first;
    it->second.rng = common::Rng(seed_ ^ common::fnv1a(site));
    if (default_cfg_) {
      it->second.cfg = *default_cfg_;
      it->second.enabled = true;
    }
  }
  return it->second;
}

void FaultPlan::inject(std::string_view site) {
  std::lock_guard lk(mu_);
  SiteState& s = state_for(site);
  ++s.stats.visits;
  if (!s.enabled) return;
  if (s.stats.visits <= s.cfg.skip_first) return;
  if (s.stats.transient_faults + s.stats.hard_faults >= s.cfg.max_faults) return;

  // Deterministic schedule first, then probabilistic draws in fixed order
  // (hard, transient, latency) so the per-site stream is reproducible.
  const std::uint64_t k = s.stats.visits - s.cfg.skip_first;
  if (s.cfg.every_nth > 0 && k % s.cfg.every_nth == 0) {
    ++s.stats.transient_faults;
    detail::notify_fault(site, "transient");
    throw TransientFault(site);
  }
  if (s.cfg.hard_p > 0.0 && s.rng.bernoulli(s.cfg.hard_p)) {
    ++s.stats.hard_faults;
    detail::notify_fault(site, "hard");
    throw HardFault(site);
  }
  if (s.cfg.transient_p > 0.0 && s.rng.bernoulli(s.cfg.transient_p)) {
    ++s.stats.transient_faults;
    detail::notify_fault(site, "transient");
    throw TransientFault(site);
  }
  if (s.cfg.latency_p > 0.0 && s.rng.bernoulli(s.cfg.latency_p)) {
    ++s.stats.latency_spikes;
    s.stats.injected_latency += s.cfg.latency;
    detail::notify_fault(site, "latency");
  }
}

SiteStats FaultPlan::site_stats(std::string_view site) const {
  std::lock_guard lk(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? SiteStats{} : it->second.stats;
}

std::map<std::string, SiteStats> FaultPlan::all_stats() const {
  std::lock_guard lk(mu_);
  std::map<std::string, SiteStats> out;
  for (const auto& [name, s] : sites_) out[name] = s.stats;
  return out;
}

std::uint64_t FaultPlan::total_faults() const {
  std::lock_guard lk(mu_);
  std::uint64_t n = 0;
  for (const auto& [_, s] : sites_) n += s.stats.transient_faults + s.stats.hard_faults;
  return n;
}

}  // namespace oda::chaos
