#include "common/stats.hpp"

#include <cstdio>

namespace oda::common {

std::string format_bytes(double bytes) {
  static const char* units[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int u = 0;
  double v = bytes;
  while (v >= 1024.0 && u < 5) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, units[u]);
  return buf;
}

std::string format_count(double n) {
  static const char* units[] = {"", "K", "M", "B", "T"};
  int u = 0;
  double v = n;
  while (v >= 1000.0 && u < 4) {
    v /= 1000.0;
    ++u;
  }
  char buf[64];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, units[u]);
  }
  return buf;
}

}  // namespace oda::common
