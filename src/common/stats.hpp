// Streaming statistics used throughout the framework: pipeline metrics,
// tier accounting, bench reporting, and model evaluation.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace oda::common {

/// Welford online mean/variance with min/max. O(1) memory.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  void merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double delta = o.mean_ - mean_;
    const auto n = static_cast<double>(n_), m = static_cast<double>(o.n_);
    m2_ += o.m2_ + delta * delta * n * m / (n + m);
    mean_ = (n * mean_ + m * o.mean_) / (n + m);
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    sum_ += o.sum_;
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-layout log-scale histogram for latency-style distributions.
/// Buckets are powers of `base` starting at `lo`; quantiles interpolate
/// within buckets. Good enough for p50/p95/p99 reporting.
class LogHistogram {
 public:
  explicit LogHistogram(double lo = 1e-7, double base = 1.3, std::size_t nbuckets = 120)
      : lo_(lo), log_base_(std::log(base)), counts_(nbuckets, 0) {}

  void add(double x) {
    stats_.add(x);
    counts_[bucket_of(x)]++;
  }

  std::size_t count() const { return stats_.count(); }
  const RunningStats& stats() const { return stats_; }

  double quantile(double q) const {
    if (stats_.count() == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(stats_.count());
    double cum = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      const double next = cum + static_cast<double>(counts_[i]);
      if (next >= target) {
        const double frac = counts_[i] ? (target - cum) / static_cast<double>(counts_[i]) : 0.0;
        return bucket_lo(i) * std::exp(log_base_ * frac);
      }
      cum = next;
    }
    return stats_.max();
  }

 private:
  std::size_t bucket_of(double x) const {
    if (x <= lo_) return 0;
    const auto b = static_cast<std::ptrdiff_t>(std::log(x / lo_) / log_base_);
    if (b < 0) return 0;
    return std::min(static_cast<std::size_t>(b), counts_.size() - 1);
  }
  double bucket_lo(std::size_t i) const { return lo_ * std::exp(log_base_ * static_cast<double>(i)); }

  double lo_;
  double log_base_;
  std::vector<std::uint64_t> counts_;
  RunningStats stats_;
};

/// Exact quantile over a retained sample (for small n, e.g. bench series).
inline double exact_quantile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx), v.end());
  return v[idx];
}

/// Mean absolute percentage error; used by the digital twin V&V (Fig 11).
inline double mape(const std::vector<double>& truth, const std::vector<double>& pred) {
  const std::size_t n = std::min(truth.size(), pred.size());
  if (n == 0) return 0.0;
  double acc = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (std::abs(truth[i]) < 1e-12) continue;
    acc += std::abs((truth[i] - pred[i]) / truth[i]);
    ++used;
  }
  return used ? 100.0 * acc / static_cast<double>(used) : 0.0;
}

/// Root-mean-square error.
inline double rmse(const std::vector<double>& truth, const std::vector<double>& pred) {
  const std::size_t n = std::min(truth.size(), pred.size());
  if (n == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = truth[i] - pred[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(n));
}

/// Human-readable byte count, e.g. "4.2 TB".
std::string format_bytes(double bytes);
/// Human-readable count, e.g. "1.3M".
std::string format_count(double n);

}  // namespace oda::common
