// Work-queue thread pool used by the pipeline engine and batch backfills.
//
// Deliberately simple (single mutex-protected deque): pipeline tasks are
// micro-batch sized, so queue contention is negligible relative to work.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace oda::common {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t nthreads = std::thread::hardware_concurrency()) {
    if (nthreads == 0) nthreads = 1;
    workers_.reserve(nthreads);
    for (std::size_t i = 0; i < nthreads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard lk(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its result.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    auto fut = task->get_future();
    {
      std::lock_guard lk(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Steal one queued task and run it on the calling thread. Returns false
  /// if the queue was empty. Lets a thread that is blocked waiting on pool
  /// futures help drain the queue instead of idling — the engine's query
  /// drivers use this so N queries sharing W workers can't deadlock when
  /// N > W.
  bool try_run_one() {
    std::function<void()> task;
    {
      std::lock_guard lk(mu_);
      if (queue_.empty()) return false;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    return true;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    const std::size_t chunks = std::min(n, workers_.size() * 4);
    std::vector<std::future<void>> futs;
    futs.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = n * c / chunks;
      const std::size_t hi = n * (c + 1) / chunks;
      futs.push_back(submit([lo, hi, &fn] {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      }));
    }
    for (auto& f : futs) f.get();
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock lk(mu_);
        cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
        if (stopping_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace oda::common
