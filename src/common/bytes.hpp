// Byte-level serialization primitives for the columnar file format,
// broker log segments and checkpoints: little-endian fixed ints,
// varints, zigzag and raw buffers.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace oda::common {

/// Default-constructed writers own their buffer (take() hands it off).
/// The external-sink constructor instead appends into a caller-owned
/// vector — the encode-into-arena mode the stream staging buffer uses, so
/// codecs serialize straight into a reusable arena with no intermediate
/// buffer or per-record allocation. Non-copyable (two writers on one sink
/// would interleave); moves re-point an owning writer at its own storage.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::vector<std::uint8_t>& sink) : buf_(&sink) {}

  ByteWriter(const ByteWriter&) = delete;
  ByteWriter& operator=(const ByteWriter&) = delete;
  ByteWriter(ByteWriter&& o) noexcept
      : owned_(std::move(o.owned_)), buf_(o.buf_ == &o.owned_ ? &owned_ : o.buf_) {}
  ByteWriter& operator=(ByteWriter&& o) noexcept {
    owned_ = std::move(o.owned_);
    buf_ = o.buf_ == &o.owned_ ? &owned_ : o.buf_;
    return *this;
  }

  void u8(std::uint8_t v) { buf_->push_back(v); }
  void u16(std::uint16_t v) { fixed(v); }
  void u32(std::uint32_t v) { fixed(v); }
  void u64(std::uint64_t v) { fixed(v); }
  void i64(std::int64_t v) { fixed(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    fixed(bits);
  }

  /// LEB128-style unsigned varint.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_->push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_->push_back(static_cast<std::uint8_t>(v));
  }

  /// Zigzag-encoded signed varint.
  void svarint(std::int64_t v) {
    varint((static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63));
  }

  void str(std::string_view s) {
    varint(s.size());
    raw(s.data(), s.size());
  }

  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_->insert(buf_->end(), p, p + n);
  }

  /// ASCII decimal, no allocation — staged encoders build keys like
  /// "n1042" directly in the staging arena.
  void text_u64(std::uint64_t v) {
    char tmp[20];
    const auto res = std::to_chars(tmp, tmp + sizeof(tmp), v);
    raw(tmp, static_cast<std::size_t>(res.ptr - tmp));
  }
  void text_i64(std::int64_t v) {
    char tmp[21];
    const auto res = std::to_chars(tmp, tmp + sizeof(tmp), v);
    raw(tmp, static_cast<std::size_t>(res.ptr - tmp));
  }

  std::size_t size() const { return buf_->size(); }
  const std::vector<std::uint8_t>& bytes() const { return *buf_; }
  /// Owning mode only: hands off the buffer. An external-sink writer's
  /// bytes belong to the sink — take() there returns the (empty) owned
  /// buffer, which is never what a caller wants.
  std::vector<std::uint8_t> take() { return std::move(owned_); }

 private:
  template <typename T>
  void fixed(T v) {
    std::uint8_t tmp[sizeof(T)];
    std::memcpy(tmp, &v, sizeof(T));
    buf_->insert(buf_->end(), tmp, tmp + sizeof(T));
  }

  std::vector<std::uint8_t> owned_;
  std::vector<std::uint8_t>* buf_ = &owned_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() { return take_fixed<std::uint8_t>(); }
  std::uint16_t u16() { return take_fixed<std::uint16_t>(); }
  std::uint32_t u32() { return take_fixed<std::uint32_t>(); }
  std::uint64_t u64() { return take_fixed<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(take_fixed<std::uint64_t>()); }
  double f64() {
    const std::uint64_t bits = take_fixed<std::uint64_t>();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (pos_ >= data_.size()) throw std::out_of_range("ByteReader: varint past end");
      const std::uint8_t b = data_[pos_++];
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if (!(b & 0x80)) return v;
      shift += 7;
      if (shift > 63) throw std::runtime_error("ByteReader: varint too long");
    }
  }

  std::int64_t svarint() {
    const std::uint64_t z = varint();
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  std::string str() {
    const std::uint64_t n = varint();
    check(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::span<const std::uint8_t> raw(std::size_t n) {
    check(n);
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ >= data_.size(); }
  std::size_t position() const { return pos_; }

 private:
  template <typename T>
  T take_fixed() {
    check(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void check(std::uint64_t n) const {
    if (pos_ + n > data_.size()) throw std::out_of_range("ByteReader: read past end");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// FNV-1a 64-bit hash — content addressing for models, checkpoints and
/// anonymization (governance).
inline std::uint64_t fnv1a(std::span<const std::uint8_t> data, std::uint64_t seed = 0xcbf29ce484222325ull) {
  std::uint64_t h = seed;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

inline std::uint64_t fnv1a(std::string_view s, std::uint64_t seed = 0xcbf29ce484222325ull) {
  return fnv1a(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()), seed);
}

}  // namespace oda::common
