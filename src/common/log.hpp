// Minimal leveled logger. Quiet by default so tests and benches stay
// readable; subsystems log through this instead of raw stderr.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

namespace oda::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance() {
    static Logger logger;
    return logger;
  }

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void log(LogLevel level, std::string_view component, std::string_view msg) {
    if (level < level_) return;
    static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
    std::lock_guard lk(mu_);
    std::fprintf(stderr, "[%s] %.*s: %.*s\n", names[static_cast<int>(level)],
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(msg.size()), msg.data());
  }

 private:
  Logger() = default;
  std::mutex mu_;
  LogLevel level_ = LogLevel::kWarn;
};

inline void log_debug(std::string_view component, const std::string& msg) {
  Logger::instance().log(LogLevel::kDebug, component, msg);
}
inline void log_info(std::string_view component, const std::string& msg) {
  Logger::instance().log(LogLevel::kInfo, component, msg);
}
inline void log_warn(std::string_view component, const std::string& msg) {
  Logger::instance().log(LogLevel::kWarn, component, msg);
}
inline void log_error(std::string_view component, const std::string& msg) {
  Logger::instance().log(LogLevel::kError, component, msg);
}

}  // namespace oda::common
