// Deterministic, fast random number generation for the facility simulator.
//
// Every stochastic component (sensor noise, job arrivals, failure
// injection) owns its own Rng seeded from a parent via split(), so runs
// are reproducible regardless of thread scheduling.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace oda::common {

/// splitmix64-seeded xoshiro256** — fast, high quality, trivially copyable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    std::uint64_t x = seed;
    for (auto& si : s_) si = splitmix64(x);
  }

  /// Derive an independent child stream (stable for a given label).
  Rng split(std::uint64_t label) {
    return Rng(next() ^ (label * 0x9e3779b97f4a7c15ull) ^ 0xd1b54a32d192ed03ull);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) { return next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(uniform_index(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller (one value per call; simple and adequate).
  double normal() {
    double u1 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with given rate (events per unit).
  double exponential(double rate) {
    double u = uniform();
    if (u < 1e-300) u = 1e-300;
    return -std::log(u) / rate;
  }

  /// Log-normal parameterized by the underlying normal's mu/sigma.
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Pareto (heavy tail) with scale xm > 0 and shape alpha > 0.
  double pareto(double xm, double alpha) {
    double u = 1.0 - uniform();
    if (u < 1e-300) u = 1e-300;
    return xm / std::pow(u, 1.0 / alpha);
  }

  /// Zipf-like rank selection over n items with exponent s (cheap approximation
  /// via inverse CDF on the continuous Pareto; adequate for workload skew).
  std::uint64_t zipf(std::uint64_t n, double s) {
    const double x = pareto(1.0, s);
    const auto r = static_cast<std::uint64_t>(x) - 1;
    return r >= n ? n - 1 : r;
  }

 private:
  static std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  static std::uint64_t rotl(std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

  std::uint64_t s_[4];
};

}  // namespace oda::common
