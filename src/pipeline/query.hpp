// StreamingQuery: one end-to-end ODA pipeline (source → operators →
// sinks) executed in micro-batches, with per-stage metrics (Fig 4-b),
// watermarks, and checkpoint/rewind recovery semantics.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/time.hpp"
#include "observe/metrics.hpp"
#include "pipeline/operator.hpp"
#include "pipeline/source_sink.hpp"

namespace oda::pipeline {

struct StageMetrics {
  std::string name;
  storage::DataClass output_class = storage::DataClass::kBronze;
  common::RunningStats wall_seconds;  ///< per batch
  std::uint64_t rows_in = 0;
  std::uint64_t rows_out = 0;
};

struct QueryMetrics {
  std::uint64_t batches = 0;
  std::uint64_t failures = 0;
  std::uint64_t batches_skipped = 0;  ///< poison batches dropped after max retries
  std::uint64_t rows_ingested = 0;
  common::RunningStats batch_wall_seconds;
  std::vector<StageMetrics> stages;
  std::string last_error;
};

struct QueryConfig {
  std::string name = "query";
  std::size_t max_records_per_batch = 4096;
  common::Duration allowed_lateness = 0;
  std::string time_column = "time";  ///< column carrying event time
  /// Consecutive failures on the same batch before it is skipped (the
  /// dead-letter policy — prevents a poison batch from livelocking the
  /// pipeline). 0 = never skip (retry forever).
  std::size_t max_retries = 5;

  // Fluent construction:
  //   QueryConfig{}.with_name("silver").with_batch_size(1024).
  QueryConfig& with_name(std::string n) {
    name = std::move(n);
    return *this;
  }
  QueryConfig& with_batch_size(std::size_t max_records) {
    max_records_per_batch = max_records;
    return *this;
  }
  QueryConfig& with_allowed_lateness(common::Duration lateness) {
    allowed_lateness = lateness;
    return *this;
  }
  QueryConfig& with_time_column(std::string column) {
    time_column = std::move(column);
    return *this;
  }
  QueryConfig& with_max_retries(std::size_t retries) {
    max_retries = retries;
    return *this;
  }

  /// Reject nonsense at query construction instead of failing (or silently
  /// spinning) deep in a run. Throws std::invalid_argument. Called by the
  /// StreamingQuery constructor.
  void validate() const;
};

/// Deterministic fault injector for recovery tests: fail the Nth batch.
struct FaultPlan {
  std::optional<std::uint64_t> fail_on_batch;
};

class StreamingQuery {
 public:
  StreamingQuery(QueryConfig config, std::unique_ptr<Source> source);

  /// Chainable stage registration (in execution order).
  StreamingQuery& add_operator(OperatorPtr op);
  StreamingQuery& add_transform(std::string name, storage::DataClass out_class,
                                std::function<sql::Table(const sql::Table&)> fn);
  StreamingQuery& add_sink(std::unique_ptr<Sink> sink);
  /// Keep a non-owning sink (owned by caller, e.g. a LAKE shared sink).
  StreamingQuery& add_sink_ref(Sink& sink);

  /// Process one micro-batch. Returns rows pulled from the source
  /// (0 = caught up, or the pull itself failed after retries). Each call
  /// is a transaction: operators snapshot and sinks begin_batch() before
  /// the pull; on any failure (exception, injected chaos fault, legacy
  /// FaultPlan) operator state and sink output roll back and the source
  /// rewinds, so the replay re-produces byte-identical output —
  /// exactly-once into transactional sinks for batches that eventually
  /// commit. A batch that keeps failing is dead-lettered after
  /// max_retries (at-most-once for that batch only). Never throws on
  /// infrastructure faults.
  std::size_t run_once();

  /// Drain until the source is caught up; returns total rows processed.
  std::uint64_t run_until_caught_up(std::size_t max_batches = SIZE_MAX);

  /// Flush stateful operators through the remaining stages to the sinks.
  void finalize();

  /// Durable checkpoint of operator state + watermark into the object
  /// store (source offsets are already durable in the broker's committed-
  /// offset store). A restarted process reconstructs the same query,
  /// calls restore_from(), and resumes exactly where the group left off.
  void checkpoint_to(storage::ObjectStore& store, const std::string& key,
                     common::TimePoint now) const;
  /// Returns false when no checkpoint exists under `key`.
  bool restore_from(const storage::ObjectStore& store, const std::string& key);

  const QueryMetrics& metrics() const { return metrics_; }
  const std::string& name() const { return config_.name; }
  common::TimePoint watermark() const { return watermark_; }
  void set_fault_plan(FaultPlan plan) { faults_ = plan; }
  Source& source() { return *source_; }

 private:
  void advance_watermark(const sql::Table& t);
  void snapshot_operator_state();
  void rollback_operator_state();

  QueryConfig config_;
  std::unique_ptr<Source> source_;
  std::vector<OperatorPtr> operators_;
  std::vector<std::unique_ptr<Sink>> owned_sinks_;
  std::vector<Sink*> sinks_;
  QueryMetrics metrics_;
  // Observability: registry handles resolved once at construction, plus
  // the batch span name ("query.<name>.batch") cached to avoid per-batch
  // string assembly.
  observe::Counter* obs_batches_ = nullptr;
  observe::Counter* obs_failures_ = nullptr;
  observe::Counter* obs_skipped_ = nullptr;
  observe::Counter* obs_rows_ = nullptr;
  observe::Histogram* obs_batch_seconds_ = nullptr;
  observe::Gauge* obs_watermark_ = nullptr;
  /// End-to-end record latency: produce-time event stamp → sink commit,
  /// in *virtual* seconds. One sample per committed batch (the oldest
  /// record's latency) — same series the sharded engine reports.
  observe::Histogram* obs_e2e_ = nullptr;
  common::TimePoint batch_min_ts_ = INT64_MAX;  ///< oldest event ts this batch
  std::string batch_span_name_;
  common::TimePoint watermark_ = INT64_MIN;
  common::TimePoint watermark_snapshot_ = INT64_MIN;
  FaultPlan faults_;
  std::size_t consecutive_failures_ = 0;
};

}  // namespace oda::pipeline
