#include "pipeline/operator.hpp"

#include "common/bytes.hpp"
#include "sql/ops.hpp"
#include "storage/columnar.hpp"

namespace oda::pipeline {

using common::Duration;
using common::TimePoint;
using sql::Table;

WindowAggOp::WindowAggOp(std::string name, std::string time_column, Duration window,
                         std::vector<std::string> keys, std::vector<sql::AggSpec> aggs,
                         Duration allowed_lateness)
    : name_(std::move(name)),
      time_column_(std::move(time_column)),
      window_(window),
      keys_(std::move(keys)),
      aggs_(std::move(aggs)),
      lateness_(allowed_lateness) {}

Batch WindowAggOp::process(Batch in) {
  if (in.table.num_rows() > 0) {
    const std::size_t tc = in.table.col_index(time_column_);
    const sql::Column& times = in.table.column(tc);
    // Route each row to its window's buffer.
    for (std::size_t r = 0; r < in.table.num_rows(); ++r) {
      if (times.is_null(r)) continue;
      const TimePoint w = common::window_start(times.int_at(r), window_);
      if (w <= max_emitted_) {
        ++late_dropped_;  // window already finalized: exactly-once emission
        continue;
      }
      auto it = pending_.find(w);
      if (it == pending_.end()) it = pending_.emplace(w, Table(in.table.schema())).first;
      std::vector<sql::Value> row = in.table.row(r);
      it->second.append_row(row);
    }
  }
  return emit_ready(in.watermark);
}

Batch WindowAggOp::emit_ready(TimePoint watermark) {
  Batch out;
  out.watermark = watermark;
  std::vector<Table> ready;
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    const TimePoint window_end = it->first + window_;
    if (window_end + lateness_ <= watermark) {
      if (std::find(emitted_uncommitted_.begin(), emitted_uncommitted_.end(), it->first) !=
          emitted_uncommitted_.end()) {
        continue;  // already emitted within this (uncommitted) batch
      }
      ready.push_back(sql::window_aggregate(it->second, time_column_, window_, keys_, aggs_));
      max_emitted_ = std::max(max_emitted_, it->first);
      // Erase is deferred to commit_batch() so a failed downstream sink
      // can roll the emission back.
      emitted_uncommitted_.push_back(it->first);
    } else {
      break;  // map is ordered by window start
    }
  }
  if (!ready.empty()) out.table = sql::concat(ready);
  return out;
}

void WindowAggOp::begin_batch() {
  batch_sizes_.clear();
  for (const auto& [w, t] : pending_) batch_sizes_[w] = t.num_rows();
  emitted_uncommitted_.clear();
  max_emitted_snapshot_ = max_emitted_;
  late_dropped_snapshot_ = late_dropped_;
}

void WindowAggOp::commit_batch() {
  for (TimePoint w : emitted_uncommitted_) pending_.erase(w);
  emitted_uncommitted_.clear();
}

void WindowAggOp::rollback_batch() {
  emitted_uncommitted_.clear();
  max_emitted_ = max_emitted_snapshot_;
  late_dropped_ = late_dropped_snapshot_;
  for (auto it = pending_.begin(); it != pending_.end();) {
    const auto sz = batch_sizes_.find(it->first);
    if (sz == batch_sizes_.end()) {
      it = pending_.erase(it);  // window created during the failed batch
    } else {
      it->second.truncate(sz->second);
      ++it;
    }
  }
}

Batch WindowAggOp::flush() {
  Batch out;
  std::vector<Table> ready;
  for (auto& [w, t] : pending_) {
    ready.push_back(sql::window_aggregate(t, time_column_, window_, keys_, aggs_));
    max_emitted_ = std::max(max_emitted_, w);
  }
  pending_.clear();
  if (!ready.empty()) out.table = sql::concat(ready);
  return out;
}

std::vector<std::uint8_t> WindowAggOp::checkpoint_state() const {
  common::ByteWriter w;
  w.i64(max_emitted_);
  w.u64(late_dropped_);
  w.varint(pending_.size());
  for (const auto& [start, table] : pending_) {
    w.i64(start);
    const auto blob = storage::write_columnar(table);
    w.varint(blob.size());
    w.raw(blob.data(), blob.size());
  }
  return w.take();
}

void WindowAggOp::restore_state(std::span<const std::uint8_t> data) {
  pending_.clear();
  if (data.empty()) {
    max_emitted_ = INT64_MIN;
    late_dropped_ = 0;
    return;
  }
  common::ByteReader r(data);
  max_emitted_ = r.i64();
  late_dropped_ = r.u64();
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    const TimePoint start = r.i64();
    const std::uint64_t len = r.varint();
    pending_.emplace(start, storage::read_columnar(r.raw(len)));
  }
}

EwmaOp::EwmaOp(std::string name, std::vector<std::string> key_columns, std::string value_column,
               double alpha, std::string output_column)
    : name_(std::move(name)),
      key_columns_(std::move(key_columns)),
      value_column_(std::move(value_column)),
      alpha_(alpha),
      output_column_(std::move(output_column)) {
  if (alpha_ <= 0.0 || alpha_ > 1.0) throw std::invalid_argument("EwmaOp: alpha must be in (0,1]");
}

Batch EwmaOp::process(Batch in) {
  if (in.table.num_rows() == 0) return in;
  const sql::Table& t = in.table;
  std::vector<std::size_t> key_cols;
  key_cols.reserve(key_columns_.size());
  for (const auto& k : key_columns_) key_cols.push_back(t.col_index(k));
  const std::size_t vc = t.col_index(value_column_);

  sql::Schema schema = t.schema();
  schema.add({output_column_, sql::DataType::kFloat64});
  sql::Table out(schema);
  out.reserve(t.num_rows());
  std::vector<sql::Value> row(schema.size());
  std::string key;
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    for (std::size_t c = 0; c < t.num_columns(); ++c) row[c] = t.column(c).get(r);
    if (t.column(vc).is_null(r)) {
      row.back() = sql::Value::null();  // nulls pass through unsmoothed
    } else {
      sql::encode_key(t, key_cols, r, key);
      const double v = t.column(vc).double_at(r);
      const auto it = state_.find(key);
      const double ewma = it == state_.end() ? v : alpha_ * v + (1.0 - alpha_) * it->second;
      state_[key] = ewma;
      row.back() = sql::Value(ewma);
    }
    out.append_row(row);
  }
  in.table = std::move(out);
  return in;
}

std::vector<std::uint8_t> EwmaOp::checkpoint_state() const {
  common::ByteWriter w;
  w.varint(state_.size());
  for (const auto& [key, v] : state_) {
    w.str(key);
    w.f64(v);
  }
  return w.take();
}

void EwmaOp::restore_state(std::span<const std::uint8_t> data) {
  state_.clear();
  if (data.empty()) return;
  common::ByteReader r(data);
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = r.str();
    state_[std::move(key)] = r.f64();
  }
}

InferenceOp::InferenceOp(std::string name, std::vector<std::string> feature_columns, ScoreFn score,
                         std::string score_column, double alert_threshold,
                         std::string alert_column)
    : name_(std::move(name)),
      feature_columns_(std::move(feature_columns)),
      score_(std::move(score)),
      score_column_(std::move(score_column)),
      alert_threshold_(alert_threshold),
      alert_column_(std::move(alert_column)) {}

Batch InferenceOp::process(Batch in) {
  if (in.table.num_rows() == 0) return in;
  const sql::Table& t = in.table;
  std::vector<std::size_t> cols;
  cols.reserve(feature_columns_.size());
  for (const auto& c : feature_columns_) cols.push_back(t.col_index(c));

  sql::Schema schema = t.schema();
  schema.add({score_column_, sql::DataType::kFloat64});
  const bool with_alert = !alert_column_.empty();
  if (with_alert) schema.add({alert_column_, sql::DataType::kBool});

  sql::Table out(schema);
  out.reserve(t.num_rows());
  std::vector<sql::Value> row(schema.size());
  std::vector<double> features(cols.size());
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    for (std::size_t c = 0; c < t.num_columns(); ++c) row[c] = t.column(c).get(r);
    bool any_null = false;
    for (std::size_t f = 0; f < cols.size(); ++f) {
      if (t.column(cols[f]).is_null(r)) {
        any_null = true;
        break;
      }
      features[f] = t.column(cols[f]).double_at(r);
    }
    if (any_null) {
      row[t.num_columns()] = sql::Value::null();
      if (with_alert) row[t.num_columns() + 1] = sql::Value::null();
    } else {
      const double score = score_(features);
      ++rows_scored_;
      row[t.num_columns()] = sql::Value(score);
      if (with_alert) {
        const bool alert = score > alert_threshold_;
        if (alert) ++alerts_;
        row[t.num_columns() + 1] = sql::Value(alert);
      }
    }
    out.append_row(row);
  }
  in.table = std::move(out);
  return in;
}

}  // namespace oda::pipeline
