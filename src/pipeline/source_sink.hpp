// Pipeline endpoints. Sources pull micro-batches from broker topics;
// sinks land refined artifacts in LAKE, OCEAN, another topic, or memory.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sql/table.hpp"
#include "storage/object_store.hpp"
#include "storage/tsdb.hpp"
#include "stream/broker.hpp"

namespace oda::pipeline {

/// Decodes a batch of raw broker records into a Table.
using RecordDecoder = std::function<sql::Table(std::span<const stream::StoredRecord>)>;

class Source {
 public:
  virtual ~Source() = default;
  /// Pull up to max_records; empty table when caught up.
  virtual sql::Table pull(std::size_t max_records) = 0;
  /// Persist read positions (called after the sink commits a batch).
  virtual void commit() = 0;
  /// Revert to last committed positions (failure recovery).
  virtual void rewind() = 0;
  virtual std::int64_t lag() const = 0;
};

/// Reads a broker topic through a consumer group.
class BrokerSource final : public Source {
 public:
  BrokerSource(stream::Broker& broker, std::string topic, std::string group, RecordDecoder decoder)
      : consumer_(broker, std::move(group), std::move(topic)), decoder_(std::move(decoder)) {}

  sql::Table pull(std::size_t max_records) override {
    const auto records = consumer_.poll(max_records);
    return decoder_(records);
  }
  void commit() override { consumer_.commit(); }
  void rewind() override { consumer_.seek_to_committed(); }
  std::int64_t lag() const override { return consumer_.lag(); }

 private:
  stream::Consumer consumer_;
  RecordDecoder decoder_;
};

class Sink {
 public:
  virtual ~Sink() = default;
  virtual void write(const sql::Table& t) = 0;
  /// Drain any buffered output (end of stream). Default: nothing buffered.
  virtual void flush() {}
};

/// Collects output in memory (tests, Gold hand-off to apps/ML).
class TableSink final : public Sink {
 public:
  explicit TableSink(sql::Schema schema) : table_(std::move(schema)) {}
  TableSink() = default;

  void write(const sql::Table& t) override {
    if (t.num_rows() == 0) return;
    if (table_.num_columns() == 0) table_ = sql::Table(t.schema());
    table_.append_table(t);
  }
  const sql::Table& table() const { return table_; }

 private:
  sql::Table table_;
};

/// Writes each row into the LAKE as time series. Tag columns become
/// series tags; `value_column` is the measurement; `metric` names it.
class LakeSink final : public Sink {
 public:
  LakeSink(storage::TimeSeriesDb& lake, std::string metric, std::string time_column,
           std::string value_column, std::vector<std::string> tag_columns)
      : lake_(lake),
        metric_(std::move(metric)),
        time_column_(std::move(time_column)),
        value_column_(std::move(value_column)),
        tag_columns_(std::move(tag_columns)) {}

  void write(const sql::Table& t) override;

 private:
  storage::TimeSeriesDb& lake_;
  std::string metric_;
  std::string time_column_;
  std::string value_column_;
  std::vector<std::string> tag_columns_;
};

/// Buffers rows and flushes columnar objects of ~`rows_per_object` into
/// OCEAN under `dataset/partNNNN`.
class OceanSink final : public Sink {
 public:
  OceanSink(storage::ObjectStore& ocean, std::string dataset, storage::DataClass data_class,
            std::size_t rows_per_object = 100000);

  void write(const sql::Table& t) override;
  /// Flush any buffered remainder as a final (smaller) object.
  void flush() override;
  std::size_t objects_written() const { return part_; }
  /// Facility time used for object metadata (advance as the pipeline runs).
  void set_now(common::TimePoint now) { now_ = now; }

 private:
  storage::ObjectStore& ocean_;
  std::string dataset_;
  storage::DataClass class_;
  std::size_t rows_per_object_;
  sql::Table buffer_;
  std::size_t part_ = 0;
  common::TimePoint now_ = 0;
};

/// Re-publishes micro-batches to another topic as columnar-serialized
/// payloads (Silver stream feeding multiple downstream consumers).
class TopicSink final : public Sink {
 public:
  TopicSink(stream::Broker& broker, std::string topic) : broker_(broker), topic_(std::move(topic)) {
    broker_.create_topic(topic_);
  }
  void write(const sql::Table& t) override;

 private:
  stream::Broker& broker_;
  std::string topic_;
};

/// Decoder for TopicSink-produced topics (columnar payload per record).
sql::Table decode_columnar_records(std::span<const stream::StoredRecord> records);

}  // namespace oda::pipeline
