// Pipeline endpoints. Sources pull micro-batches from broker topics;
// sinks land refined artifacts in LAKE, OCEAN, another topic, or memory.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/faults.hpp"
#include "observe/trace.hpp"
#include "sql/table.hpp"
#include "storage/object_store.hpp"
#include "storage/tsdb.hpp"
#include "stream/broker.hpp"

namespace oda::pipeline {

/// Decodes a batch of raw broker records into a Table. Decoders read
/// straight from RecordViews (string_views pinned by the pull's
/// FetchView) — no owned Record is materialized between the log and the
/// sql::Table. Code holding owned records adapts with stream::as_views().
using RecordDecoder = std::function<sql::Table(std::span<const stream::RecordView>)>;

class Source {
 public:
  virtual ~Source() = default;
  /// Pull up to max_records; empty table when caught up.
  virtual sql::Table pull(std::size_t max_records) = 0;
  /// Persist read positions (called after the sink commits a batch).
  virtual void commit() = 0;
  /// Revert to last committed positions (failure recovery).
  virtual void rewind() = 0;
  virtual std::int64_t lag() const = 0;
  /// Trace context carried by the most recent pull (the first record's
  /// stamped producer span), for continuing the producer's trace across
  /// the broker hop. {} when tracing is off or the batch was empty.
  virtual observe::TraceContext incoming_trace() const { return {}; }
};

/// Reads a broker topic through any Subscription — a whole-topic Consumer
/// (the single-threaded default) or a rebalancing GroupMember (engine
/// workers), injected by the caller. Polls retry under the retry policy:
/// a faulted fetch ("stream.fetch") may have advanced the subscription's
/// positions partway through the topic's partitions, so every retry first
/// restores the committed positions. Decode happens outside the retry
/// loop — a payload that cannot decode is poison, not a transient
/// infrastructure error.
class BrokerSource final : public Source {
 public:
  BrokerSource(std::unique_ptr<stream::Subscription> sub, RecordDecoder decoder,
               chaos::RetryPolicy retry = {})
      : sub_(std::move(sub)), decoder_(std::move(decoder)), retrier_(retry, /*seed=*/0xb20ce2ull) {}

  /// Convenience: subscribe a whole-topic Consumer (note the historical
  /// (topic, group) argument order, kept for the many existing call sites).
  BrokerSource(stream::Broker& broker, std::string topic, std::string group, RecordDecoder decoder,
               chaos::RetryPolicy retry = {})
      : BrokerSource(std::make_unique<stream::Consumer>(broker, std::move(group), std::move(topic)),
                     std::move(decoder), retry) {}

  sql::Table pull(std::size_t max_records) override {
    // Zero-copy pull: the poll returns pinned views; the decoder reads
    // them in place and only the decoded Table survives this frame.
    const stream::FetchView records = retrier_.run(
        "pipeline.pull", [&] { return sub_->poll(max_records); },
        [&] { sub_->seek_to_committed(); });
    incoming_ = records.empty()
                    ? observe::TraceContext{}
                    : observe::TraceContext{records.front().trace_id, records.front().span_id};
    return decoder_(records.records());
  }
  void commit() override { sub_->commit(); }
  void rewind() override { sub_->seek_to_committed(); }
  std::int64_t lag() const override { return sub_->lag(); }
  observe::TraceContext incoming_trace() const override { return incoming_; }
  const chaos::RetryStats& retry_stats() const { return retrier_.stats(); }
  stream::Subscription& subscription() { return *sub_; }

 private:
  std::unique_ptr<stream::Subscription> sub_;
  RecordDecoder decoder_;
  chaos::Retrier retrier_;
  observe::TraceContext incoming_;
};

/// Sinks participate in the micro-batch transaction protocol:
///
///   begin_batch(); write()...; commit_batch()   — or rollback_batch().
///
/// All fallible I/O (including internal retries) happens in write();
/// commit_batch() and rollback_batch() MUST be infallible — they only
/// adjust in-memory bookkeeping, which is what lets StreamingQuery
/// guarantee exactly-once output across fault-driven batch replays.
/// Sinks used without brackets (direct write calls) behave as before:
/// every write lands immediately.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void write(const sql::Table& t) = 0;
  /// Drain any buffered output (end of stream). Default: nothing buffered.
  virtual void flush() {}
  /// Open a micro-batch transaction. Default: no transactional state.
  virtual void begin_batch() {}
  /// Make the batch's writes durable/visible. Must not throw.
  virtual void commit_batch() {}
  /// Discard the batch's writes (the batch will be replayed or skipped).
  /// Must not throw.
  virtual void rollback_batch() {}
};

/// Collects output in memory (tests, Gold hand-off to apps/ML).
class TableSink final : public Sink {
 public:
  explicit TableSink(sql::Schema schema) : table_(std::move(schema)) {}
  TableSink() = default;

  void write(const sql::Table& t) override {
    if (t.num_rows() == 0) return;
    if (table_.num_columns() == 0) table_ = sql::Table(t.schema());
    table_.append_table(t);
  }
  void begin_batch() override {
    snap_rows_ = table_.num_rows();
    in_batch_ = true;
  }
  void commit_batch() override { in_batch_ = false; }
  void rollback_batch() override {
    if (in_batch_) table_.truncate(snap_rows_);
    in_batch_ = false;
  }
  const sql::Table& table() const { return table_; }

 private:
  sql::Table table_;
  std::size_t snap_rows_ = 0;
  bool in_batch_ = false;
};

/// Writes each row into the LAKE as time series. Tag columns become
/// series tags; `value_column` is the measurement; `metric` names it.
class LakeSink final : public Sink {
 public:
  LakeSink(storage::TimeSeriesDb& lake, std::string metric, std::string time_column,
           std::string value_column, std::vector<std::string> tag_columns)
      : lake_(lake),
        metric_(std::move(metric)),
        time_column_(std::move(time_column)),
        value_column_(std::move(value_column)),
        tag_columns_(std::move(tag_columns)) {}

  void write(const sql::Table& t) override;
  /// Bracketed writes stage their rows and land atomically at commit;
  /// bracketless writes (direct use) land immediately as before.
  void begin_batch() override {
    staged_.clear();
    in_batch_ = true;
  }
  void commit_batch() override {
    for (const auto& t : staged_) append_rows(t);
    staged_.clear();
    in_batch_ = false;
  }
  void rollback_batch() override {
    staged_.clear();
    in_batch_ = false;
  }

 private:
  void append_rows(const sql::Table& t);

  storage::TimeSeriesDb& lake_;
  std::string metric_;
  std::string time_column_;
  std::string value_column_;
  std::vector<std::string> tag_columns_;
  std::vector<sql::Table> staged_;
  bool in_batch_ = false;
};

/// Buffers rows and flushes columnar objects of ~`rows_per_object` into
/// OCEAN under `dataset/partNNNN`. Part keys are deterministic, so a
/// replayed batch that re-flushes a chunk overwrites the same object with
/// identical bytes (put is idempotent by key) — exactly-once at the
/// object level. Puts retry under the sink retry policy at the
/// "pipeline.sink" seam.
class OceanSink final : public Sink {
 public:
  OceanSink(storage::ObjectStore& ocean, std::string dataset, storage::DataClass data_class,
            std::size_t rows_per_object = 100000, chaos::RetryPolicy retry = {});

  void write(const sql::Table& t) override;
  /// Flush any buffered remainder as a final (smaller) object.
  void flush() override;
  void begin_batch() override {
    snap_buffer_ = buffer_;
    snap_part_ = part_;
    in_batch_ = true;
  }
  void commit_batch() override {
    snap_buffer_ = sql::Table{};
    in_batch_ = false;
  }
  void rollback_batch() override {
    // Restore buffer AND part counter: a chunk flushed mid-batch leaves
    // the buffer, so a row-count snapshot alone could not reconstruct it.
    // The replay re-produces the same chunks under the same part keys.
    if (in_batch_) {
      buffer_ = std::move(snap_buffer_);
      part_ = snap_part_;
    }
    snap_buffer_ = sql::Table{};
    in_batch_ = false;
  }
  std::size_t objects_written() const { return part_; }
  /// Facility time used for object metadata (advance as the pipeline runs).
  void set_now(common::TimePoint now) { now_ = now; }
  const chaos::RetryStats& retry_stats() const { return retrier_.stats(); }

 private:
  void put_object(const sql::Table& chunk);

  storage::ObjectStore& ocean_;
  std::string dataset_;
  storage::DataClass class_;
  std::size_t rows_per_object_;
  chaos::Retrier retrier_;
  sql::Table buffer_;
  std::size_t part_ = 0;
  common::TimePoint now_ = 0;
  sql::Table snap_buffer_;
  std::size_t snap_part_ = 0;
  bool in_batch_ = false;
};

/// Re-publishes micro-batches to another topic as columnar-serialized
/// payloads (Silver stream feeding multiple downstream consumers).
///
/// A produced record cannot be unpublished, so the batch protocol dedupes
/// instead of undoing: each write inside a batch is numbered, and the
/// high-water mark of already-published writes survives rollback. When
/// StreamingQuery replays the batch (deterministically — same input rows,
/// same operator state), writes below the mark are skipped rather than
/// re-published. Publishing itself retries at the "pipeline.sink" seam.
/// If the batch is ultimately dead-lettered after a partial publish, the
/// published prefix stays — at-least-once is the documented floor for a
/// non-transactional broker; the chaos tier drains to success instead.
class TopicSink final : public Sink {
 public:
  TopicSink(stream::Broker& broker, std::string topic, chaos::RetryPolicy retry = {})
      : topic_(std::move(topic)),
        producer_(broker.create_topic(topic_)),
        retrier_(retry, /*seed=*/0x70b1c5ull) {}
  void write(const sql::Table& t) override;
  void begin_batch() override { writes_this_batch_ = 0; }
  void commit_batch() override {
    produced_high_water_ = 0;
    writes_this_batch_ = 0;
  }
  void rollback_batch() override {
    // Keep produced_high_water_: those records are already in the topic
    // and the replay must not double-publish them.
    writes_this_batch_ = 0;
  }
  const chaos::RetryStats& retry_stats() const { return retrier_.stats(); }

 private:
  std::string topic_;
  stream::Producer producer_;  ///< cached handle; skips name lookup per write
  chaos::Retrier retrier_;
  std::size_t writes_this_batch_ = 0;
  std::size_t produced_high_water_ = 0;
};

/// Decoder for TopicSink-produced topics (columnar payload per record).
sql::Table decode_columnar_records(std::span<const stream::RecordView> records);

}  // namespace oda::pipeline
