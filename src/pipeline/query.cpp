#include "pipeline/query.hpp"

#include <stdexcept>

#include "common/bytes.hpp"
#include "common/faults.hpp"
#include "observe/trace.hpp"

namespace oda::pipeline {

using common::Stopwatch;
using sql::Table;

void QueryConfig::validate() const {
  if (name.empty()) {
    throw std::invalid_argument("QueryConfig: name must not be empty");
  }
  if (max_records_per_batch == 0) {
    throw std::invalid_argument("QueryConfig: max_records_per_batch must be >= 1");
  }
  if (time_column.empty()) {
    throw std::invalid_argument("QueryConfig: time_column must not be empty");
  }
}

StreamingQuery::StreamingQuery(QueryConfig config, std::unique_ptr<Source> source)
    : config_(std::move(config)), source_(std::move(source)) {
  config_.validate();
  auto& reg = observe::default_registry();
  const observe::Labels labels{{"query", config_.name}};
  obs_batches_ = reg.counter("pipeline.batches", labels);
  obs_failures_ = reg.counter("pipeline.batch.failures", labels);
  obs_skipped_ = reg.counter("pipeline.batches.skipped", labels);
  obs_rows_ = reg.counter("pipeline.rows.ingested", labels);
  obs_batch_seconds_ = reg.histogram("pipeline.batch.seconds", labels);
  obs_watermark_ = reg.gauge("pipeline.watermark", labels);
  obs_e2e_ = reg.histogram("stream.e2e_latency", labels);
  batch_span_name_ = "query." + config_.name + ".batch";
}

StreamingQuery& StreamingQuery::add_operator(OperatorPtr op) {
  StageMetrics sm;
  sm.name = op->name();
  sm.output_class = op->output_class();
  metrics_.stages.push_back(std::move(sm));
  operators_.push_back(std::move(op));
  return *this;
}

StreamingQuery& StreamingQuery::add_transform(std::string name, storage::DataClass out_class,
                                              std::function<Table(const Table&)> fn) {
  return add_operator(std::make_unique<TransformOp>(std::move(name), out_class, std::move(fn)));
}

StreamingQuery& StreamingQuery::add_sink(std::unique_ptr<Sink> sink) {
  sinks_.push_back(sink.get());
  owned_sinks_.push_back(std::move(sink));
  return *this;
}

StreamingQuery& StreamingQuery::add_sink_ref(Sink& sink) {
  sinks_.push_back(&sink);
  return *this;
}

void StreamingQuery::advance_watermark(const Table& t) {
  const std::size_t tc = t.schema().index_of(config_.time_column);
  if (tc == sql::Schema::npos) return;
  std::int64_t mx = INT64_MIN;
  const auto& col = t.column(tc);
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    if (col.is_null(r)) continue;
    const std::int64_t ts = col.int_at(r);
    mx = std::max(mx, ts);
    batch_min_ts_ = std::min(batch_min_ts_, ts);
  }
  if (mx != INT64_MIN) watermark_ = std::max(watermark_, mx - config_.allowed_lateness);
}

void StreamingQuery::snapshot_operator_state() {
  for (const auto& op : operators_) op->begin_batch();
  watermark_snapshot_ = watermark_;
}

void StreamingQuery::rollback_operator_state() {
  for (const auto& op : operators_) op->rollback_batch();
  watermark_ = watermark_snapshot_;
}

std::size_t StreamingQuery::run_once() {
  Stopwatch batch_sw;
  // The batch span starts a fresh trace unless a span is already open on
  // this thread; once the pull returns it is re-homed (link) under the
  // producer span stamped on the first consumed record, continuing the
  // trace across the broker hop.
  observe::Span batch_span(batch_span_name_);
  snapshot_operator_state();
  for (Sink* s : sinks_) s->begin_batch();

  std::size_t pulled = 0;
  bool pull_ok = false;
  batch_min_ts_ = INT64_MAX;
  try {
    Table input = source_->pull(config_.max_records_per_batch);
    pull_ok = true;
    pulled = input.num_rows();
    batch_span.link(source_->incoming_trace());
    if (pulled == 0) {
      // Nothing happened; close the empty transaction.
      for (Sink* s : sinks_) s->commit_batch();
      for (auto& op : operators_) op->commit_batch();
      return 0;
    }

    chaos::fault_point("pipeline.batch");
    if (faults_.fail_on_batch && metrics_.batches == *faults_.fail_on_batch) {
      faults_.fail_on_batch.reset();
      throw std::runtime_error("injected fault");
    }

    advance_watermark(input);
    Batch batch{std::move(input), watermark_};

    for (std::size_t i = 0; i < operators_.size(); ++i) {
      Stopwatch sw;
      observe::Span op_span(operators_[i]->name());
      const std::uint64_t in_rows = batch.table.num_rows();
      batch = operators_[i]->process(std::move(batch));
      StageMetrics& sm = metrics_.stages[i];
      sm.wall_seconds.add(sw.elapsed_seconds());
      sm.rows_in += in_rows;
      sm.rows_out += batch.table.num_rows();
    }
    for (Sink* s : sinks_) {
      observe::Span sink_span("sink.write");
      s->write(batch.table);
    }

    // Commit order: sinks first (their commits are infallible in-memory
    // bookkeeping), then operator state, then the source offsets. Nothing
    // after the sink writes can throw, so a batch either fully lands or
    // fully rolls back.
    for (Sink* s : sinks_) s->commit_batch();
    for (auto& op : operators_) op->commit_batch();
    source_->commit();
    metrics_.rows_ingested += pulled;
    ++metrics_.batches;
    consecutive_failures_ = 0;
    metrics_.batch_wall_seconds.add(batch_sw.elapsed_seconds());
    obs_batches_->inc();
    obs_rows_->inc(pulled);
    obs_batch_seconds_->add(batch_sw.elapsed_seconds());
    obs_watermark_->set(static_cast<double>(watermark_));
    if (batch_min_ts_ != INT64_MAX) {
      // Oldest record's produce→commit gap, in virtual seconds — the
      // end-to-end latency the paper's STREAM path cares about.
      obs_e2e_->add(std::max(0.0, static_cast<double>(observe::virtual_now() - batch_min_ts_) /
                                      static_cast<double>(common::kSecond)));
    }
    return pulled;
  } catch (const std::exception& e) {
    ++metrics_.failures;
    metrics_.last_error = e.what();
    obs_failures_->inc();
    rollback_operator_state();
    for (Sink* s : sinks_) s->rollback_batch();
    if (!pull_ok) {
      // The pull itself gave up (broker outage outlasting the source's
      // retry budget). The consumer may have phantom-advanced positions,
      // so restore them and report "no progress" — the batch was never
      // observed, there is nothing to dead-letter.
      source_->rewind();
      return 0;
    }
    if (config_.max_retries > 0 && ++consecutive_failures_ >= config_.max_retries) {
      // Dead-letter the poison batch: commit past it so the pipeline
      // makes progress (at-most-once for this batch only). Sinks reset
      // their replay bookkeeping; any prefix a TopicSink already
      // published stays (the at-least-once floor documented there).
      for (Sink* s : sinks_) s->commit_batch();
      source_->commit();
      ++metrics_.batches_skipped;
      obs_skipped_->inc();
      consecutive_failures_ = 0;
    } else {
      source_->rewind();  // replay on the next run_once()
    }
    return pulled;
  }
}

std::uint64_t StreamingQuery::run_until_caught_up(std::size_t max_batches) {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < max_batches; ++b) {
    const std::size_t n = run_once();
    if (n == 0 && source_->lag() == 0) break;
    total += n;
  }
  return total;
}

void StreamingQuery::finalize() {
  // Drain stateful operators: flush op i, push the result through the
  // remaining stages, then flush op i+1 (which now includes the pushed
  // rows), and so on.
  for (std::size_t i = 0; i < operators_.size(); ++i) {
    Batch b = operators_[i]->flush();
    if (b.table.num_rows() == 0) continue;
    for (std::size_t j = i + 1; j < operators_.size(); ++j) b = operators_[j]->process(std::move(b));
    for (Sink* s : sinks_) s->write(b.table);
  }
  // A final pass: downstream stateful ops may still hold the pushed rows.
  for (std::size_t i = 0; i < operators_.size(); ++i) {
    Batch b = operators_[i]->flush();
    if (b.table.num_rows() == 0) continue;
    for (std::size_t j = i + 1; j < operators_.size(); ++j) b = operators_[j]->process(std::move(b));
    for (Sink* s : sinks_) s->write(b.table);
  }
  for (Sink* s : sinks_) s->flush();
}

void StreamingQuery::checkpoint_to(storage::ObjectStore& store, const std::string& key,
                                   common::TimePoint now) const {
  common::ByteWriter w;
  w.str(config_.name);
  w.i64(watermark_);
  w.varint(operators_.size());
  for (const auto& op : operators_) {
    const auto state = op->checkpoint_state();
    w.varint(state.size());
    w.raw(state.data(), state.size());
  }
  store.put(key, w.take(), "checkpoints", storage::DataClass::kBronze, now);
}

bool StreamingQuery::restore_from(const storage::ObjectStore& store, const std::string& key) {
  const auto blob = store.get(key);
  if (!blob) return false;
  common::ByteReader r(*blob);
  const std::string name = r.str();
  if (name != config_.name) {
    throw std::runtime_error("StreamingQuery: checkpoint '" + key + "' belongs to query '" + name +
                             "', not '" + config_.name + "'");
  }
  watermark_ = r.i64();
  const std::uint64_t n = r.varint();
  if (n != operators_.size()) {
    throw std::runtime_error("StreamingQuery: checkpoint operator count mismatch");
  }
  for (auto& op : operators_) {
    const std::uint64_t len = r.varint();
    op->restore_state(r.raw(len));
  }
  source_->rewind();  // resume from the group's committed offsets
  return true;
}

}  // namespace oda::pipeline
