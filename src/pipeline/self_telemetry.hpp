// The self-telemetry loop's back half (DESIGN.md §9): factories that bind
// the observe-layer Scraper to real broker producers on the reserved
// `_oda.*` topics, and a StreamingQuery that folds `_oda.metrics` back
// into an observe::HistoryStore through the same micro-batch transaction
// machinery facility data uses — so the framework's own telemetry
// exercises broker, pipeline and storage end to end and inherits their
// exactly-once / golden-run guarantees.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "common/faults.hpp"
#include "observe/history.hpp"
#include "observe/scraper.hpp"
#include "pipeline/query.hpp"
#include "pipeline/source_sink.hpp"
#include "storage/object_store.hpp"
#include "stream/broker.hpp"

namespace oda::pipeline {

/// Schema of decoded `_oda.metrics` batches: time:int64, series:string,
/// kind:string, value:float64, delta:float64, count:int64.
sql::Schema metric_sample_schema();

/// RecordDecoder for `_oda.metrics`. Malformed payloads are skipped and
/// counted on the default registry ("selfobs.decode.errors") — poison
/// telemetry must never wedge the loop that reports on poison.
sql::Table metric_records_to_table(std::span<const stream::RecordView> records);

/// Transactional sink appending (time, series, value) rows into a
/// HistoryStore. Bracketed writes stage and land at commit_batch() so a
/// rolled-back batch leaves no points behind (replays stay exactly-once);
/// bracketless writes land immediately, as for the other sinks.
class HistorySink final : public Sink {
 public:
  explicit HistorySink(observe::HistoryStore& store) : store_(store) {}

  void write(const sql::Table& t) override;
  void begin_batch() override {
    staged_.clear();
    in_batch_ = true;
  }
  void commit_batch() override {
    for (const auto& row : staged_) store_.append(row.series, row.t, row.value);
    staged_.clear();
    in_batch_ = false;
  }
  void rollback_batch() override {
    staged_.clear();
    in_batch_ = false;
  }

 private:
  struct Row {
    std::string series;
    common::TimePoint t;
    double value;
  };
  void append_rows(const sql::Table& t, std::vector<Row>* out) const;

  observe::HistoryStore& store_;
  std::vector<Row> staged_;
  bool in_batch_ = false;
};

/// Build a Scraper producing onto `_oda.metrics` / `_oda.alerts` (topics
/// created here if absent, `_oda.metrics` with config.metrics_partitions).
/// Produces retry under `retry` at the "selfobs.produce" chaos seam —
/// each attempt re-offers the whole batch, and Topic::produce_batch
/// rejects faulted batches whole, so retries never duplicate records.
std::unique_ptr<observe::Scraper> make_scraper(observe::MetricsRegistry& registry,
                                               stream::Broker& broker,
                                               observe::ScraperConfig config = {},
                                               chaos::RetryPolicy retry = {});

/// The history half: a StreamingQuery subscribed to `_oda.metrics`
/// (consumer group "_oda.history") decoding samples into `store` through
/// a HistorySink. Runs anywhere a query runs: the framework's advance
/// loop, standalone run_until_caught_up(), or an engine scheduler slot.
/// `config.name` defaults to "_oda.history" when left at QueryConfig's
/// default.
std::unique_ptr<StreamingQuery> make_history_query(stream::Broker& broker,
                                                   observe::HistoryStore& store,
                                                   QueryConfig config = {},
                                                   chaos::RetryPolicy retry = {});

/// Persist gold rollups: one columnar object per resolution under
/// `dataset`/<resolution>, DataClass::kGold, covering every retained
/// series. Returns objects written. Object keys are deterministic, so
/// repeated persists overwrite in place (put is idempotent by key).
std::size_t persist_history_gold(const observe::HistoryStore& store, storage::ObjectStore& ocean,
                                 const std::string& dataset, common::TimePoint now);

}  // namespace oda::pipeline
