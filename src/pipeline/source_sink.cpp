#include "pipeline/source_sink.hpp"

#include <algorithm>
#include <cstdio>

#include "sql/ops.hpp"
#include "storage/columnar.hpp"

namespace oda::pipeline {

using sql::Table;
using sql::Value;

void LakeSink::write(const Table& t) {
  if (t.num_rows() == 0) return;
  // Validate column references up front so a bad schema still fails in
  // write() (the fallible phase), then stage or write through.
  (void)t.col_index(time_column_);
  (void)t.col_index(value_column_);
  for (const auto& c : tag_columns_) (void)t.col_index(c);
  if (in_batch_) {
    staged_.push_back(t);
    return;
  }
  append_rows(t);
}

void LakeSink::append_rows(const Table& t) {
  const std::size_t tc = t.col_index(time_column_);
  const std::size_t vc = t.col_index(value_column_);
  std::vector<std::size_t> tag_idx;
  tag_idx.reserve(tag_columns_.size());
  for (const auto& c : tag_columns_) tag_idx.push_back(t.col_index(c));

  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    if (t.column(tc).is_null(r) || t.column(vc).is_null(r)) continue;
    storage::SeriesKey key;
    key.metric = metric_;
    for (std::size_t i = 0; i < tag_idx.size(); ++i) {
      const auto& col = t.column(tag_idx[i]);
      if (!col.is_null(r)) key.tags[tag_columns_[i]] = col.get(r).to_string();
    }
    lake_.append(key, t.column(tc).int_at(r), t.column(vc).double_at(r));
  }
}

OceanSink::OceanSink(storage::ObjectStore& ocean, std::string dataset, storage::DataClass data_class,
                     std::size_t rows_per_object, chaos::RetryPolicy retry)
    : ocean_(ocean),
      dataset_(std::move(dataset)),
      class_(data_class),
      rows_per_object_(rows_per_object),
      retrier_(retry, /*seed=*/0x0cea2ull) {}

void OceanSink::put_object(const Table& chunk) {
  char name[32];
  std::snprintf(name, sizeof(name), "/part%06zu", part_);
  const std::string key = dataset_ + name;
  const auto blob = storage::write_columnar(chunk);
  retrier_.run("pipeline.sink", [&] {
    chaos::fault_point("pipeline.sink");
    ocean_.put(key, blob, dataset_, class_, now_);
  });
  ++part_;  // only after the put landed; a failed put keeps the key stable
}

void OceanSink::write(const Table& t) {
  if (t.num_rows() == 0) return;
  if (buffer_.num_columns() == 0) buffer_ = Table(t.schema());
  buffer_.append_table(t);
  while (buffer_.num_rows() >= rows_per_object_) {
    // Split off the first rows_per_object_ rows.
    std::vector<std::size_t> head(rows_per_object_);
    for (std::size_t i = 0; i < rows_per_object_; ++i) head[i] = i;
    const Table chunk = buffer_.take(head);
    std::vector<std::size_t> tail(buffer_.num_rows() - rows_per_object_);
    for (std::size_t i = 0; i < tail.size(); ++i) tail[i] = rows_per_object_ + i;
    buffer_ = buffer_.take(tail);

    put_object(chunk);
  }
}

void OceanSink::flush() {
  if (buffer_.num_rows() == 0) return;
  put_object(buffer_);
  buffer_ = Table(buffer_.schema());
}

void TopicSink::write(const Table& t) {
  if (t.num_rows() == 0) return;
  // Dedupe across deterministic replays: writes already published in an
  // earlier attempt of this batch are skipped, not re-produced.
  const std::size_t idx = writes_this_batch_++;
  if (idx < produced_high_water_) return;
  stream::Record rec;
  // Batch event time: max of the first int64 column named "time" or
  // "window_start" if present, else 0.
  std::size_t tc = t.schema().index_of("time");
  if (tc == sql::Schema::npos) tc = t.schema().index_of("window_start");
  if (tc != sql::Schema::npos && t.num_rows() > 0) {
    std::int64_t mx = INT64_MIN;
    for (std::size_t r = 0; r < t.num_rows(); ++r) {
      if (!t.column(tc).is_null(r)) mx = std::max(mx, t.column(tc).int_at(r));
    }
    if (mx != INT64_MIN) rec.timestamp = mx;
  }
  const auto blob = storage::write_columnar(t);
  rec.payload.assign(reinterpret_cast<const char*>(blob.data()), blob.size());
  retrier_.run("pipeline.sink", [&] {
    chaos::fault_point("pipeline.sink");
    producer_.produce(rec);  // copy per attempt; produce rejects before append
  });
  produced_high_water_ = idx + 1;
}

Table decode_columnar_records(std::span<const stream::RecordView> records) {
  std::vector<Table> parts;
  parts.reserve(records.size());
  for (const auto& v : records) {
    parts.push_back(storage::read_columnar(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(v.payload.data()), v.payload.size())));
  }
  if (parts.empty()) return Table{};
  return sql::concat(parts);
}

}  // namespace oda::pipeline
