#include "pipeline/self_telemetry.hpp"

#include <cinttypes>
#include <cstdio>
#include <utility>
#include <vector>

#include "storage/columnar.hpp"

namespace oda::pipeline {

using sql::DataType;
using sql::Schema;
using sql::Table;
using sql::Value;

sql::Schema metric_sample_schema() {
  return Schema{{"time", DataType::kInt64},   {"series", DataType::kString},
                {"kind", DataType::kString},  {"value", DataType::kFloat64},
                {"delta", DataType::kFloat64}, {"count", DataType::kInt64}};
}

sql::Table metric_records_to_table(std::span<const stream::RecordView> records) {
  static observe::Counter* decode_errors =
      observe::default_registry().counter("selfobs.decode.errors");
  Table t{metric_sample_schema()};
  for (const auto& v : records) {
    observe::MetricSample s;
    if (!observe::decode_metric_sample(v.payload, &s)) {
      decode_errors->inc();
      continue;
    }
    t.append_row({Value(v.timestamp), Value(std::move(s.series)),
                  Value(std::string(observe::metric_kind_name(s.kind))), Value(s.value),
                  Value(s.delta), Value(static_cast<std::int64_t>(s.count))});
  }
  return t;
}

void HistorySink::append_rows(const sql::Table& t, std::vector<Row>* out) const {
  if (t.num_rows() == 0) return;
  const auto& time = t.column("time");
  const auto& series = t.column("series");
  const auto& value = t.column("value");
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    out->push_back({series.str_at(r), time.int_at(r), value.double_at(r)});
  }
}

void HistorySink::write(const sql::Table& t) {
  if (in_batch_) {
    append_rows(t, &staged_);
    return;
  }
  std::vector<Row> rows;
  append_rows(t, &rows);
  for (const auto& row : rows) store_.append(row.series, row.t, row.value);
}

std::unique_ptr<observe::Scraper> make_scraper(observe::MetricsRegistry& registry,
                                               stream::Broker& broker,
                                               observe::ScraperConfig config,
                                               chaos::RetryPolicy retry) {
  config.validate();
  broker.create_topic(stream::kMetricsTopic,
                      stream::TopicConfig{}.with_partitions(config.metrics_partitions));
  broker.create_topic(stream::kAlertsTopic, stream::TopicConfig{}.with_partitions(1));

  // Each callback owns a cached Producer and a seeded Retrier. A produce
  // attempt that faults ("selfobs.produce" seam or produce_staged's own
  // "stream.produce" site) rejects the batch whole and leaves the staging
  // buffer intact, so the retry re-flushes the identical bytes — no
  // per-attempt batch copy, no re-encode, no duplication.
  auto bind = [&broker, retry](const char* topic,
                               std::uint64_t seed) -> observe::StagedProduceFn {
    return [producer = broker.producer(topic),
            retrier = std::make_shared<chaos::Retrier>(retry, seed)](
               stream::BatchBuilder& staged) mutable -> std::size_t {
      return retrier->run("selfobs.produce", [&] {
        // Fires before any append, so a faulted attempt leaves nothing
        // behind and the retry cannot duplicate.
        chaos::fault_point("selfobs.produce");
        return producer.produce_staged(staged);
      });
    };
  };
  return std::make_unique<observe::Scraper>(registry, bind(stream::kMetricsTopic, 0x5e1f0b5ull),
                                            bind(stream::kAlertsTopic, 0xa1e275ull), config);
}

std::unique_ptr<StreamingQuery> make_history_query(stream::Broker& broker,
                                                   observe::HistoryStore& store,
                                                   QueryConfig config, chaos::RetryPolicy retry) {
  broker.create_topic(stream::kMetricsTopic);
  if (config.name == QueryConfig{}.name) config.name = "_oda.history";
  auto q = std::make_unique<StreamingQuery>(
      config, std::make_unique<BrokerSource>(broker, stream::kMetricsTopic, "_oda.history",
                                             metric_records_to_table, retry));
  q->add_sink(std::make_unique<HistorySink>(store));
  return q;
}

std::size_t persist_history_gold(const observe::HistoryStore& store, storage::ObjectStore& ocean,
                                 const std::string& dataset, common::TimePoint now) {
  std::size_t objects = 0;
  for (const observe::Resolution res :
       {observe::Resolution::kRaw, observe::Resolution::kOneMinute,
        observe::Resolution::kTenMinute}) {
    Table t{Schema{{"series", DataType::kString}, {"bucket", DataType::kInt64},
                   {"min", DataType::kFloat64},   {"max", DataType::kFloat64},
                   {"avg", DataType::kFloat64},   {"last", DataType::kFloat64},
                   {"count", DataType::kInt64}}};
    for (const auto& series : store.series_names()) {
      for (const auto& p : store.query(series, INT64_MIN, INT64_MAX, res)) {
        t.append_row({Value(series), Value(p.t), Value(p.min), Value(p.max), Value(p.avg()),
                      Value(p.last), Value(static_cast<std::int64_t>(p.count))});
      }
    }
    if (t.num_rows() == 0) continue;
    const std::string key = dataset + "/" + observe::resolution_name(res);
    ocean.put(key, storage::write_columnar(t), dataset, storage::DataClass::kGold, now);
    ++objects;
  }
  return objects;
}

}  // namespace oda::pipeline
