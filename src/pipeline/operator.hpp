// Streaming operators. A pipeline is source → operators → sink, executed
// in micro-batches with event-time watermarks — the structured-streaming
// execution model the paper adopts for "high-volume processing of
// multiple data streams" (Sec V-B).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "sql/agg.hpp"
#include "sql/table.hpp"
#include "storage/object_store.hpp"

namespace oda::pipeline {

/// A micro-batch flowing through the pipeline.
struct Batch {
  sql::Table table;
  common::TimePoint watermark = 0;  ///< max event time seen minus lateness
};

class Operator {
 public:
  virtual ~Operator() = default;
  virtual const std::string& name() const = 0;
  /// Medallion class of this operator's *output*.
  virtual storage::DataClass output_class() const = 0;
  /// Process one batch; may emit zero rows (stateful ops buffer).
  virtual Batch process(Batch in) = 0;
  /// Flush any buffered state (end of stream / drain).
  virtual Batch flush() { return Batch{}; }

  /// Batch-transaction hooks: the query brackets every micro-batch with
  /// begin_batch() ... (process, sinks) ... commit_batch(), and calls
  /// rollback_batch() instead of commit on failure so a rewound source
  /// can replay the batch without double-counting. Stateless default:
  /// no-ops. Implementations must make rollback cheap (O(batch), not
  /// O(state)) — this runs on every micro-batch.
  virtual void begin_batch() {}
  virtual void commit_batch() {}
  virtual void rollback_batch() {}

  /// Serialize/restore operator state for durable checkpointing (e.g.
  /// writing to the object store between runs). Default: stateless.
  virtual std::vector<std::uint8_t> checkpoint_state() const { return {}; }
  virtual void restore_state(std::span<const std::uint8_t>) {}
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Stateless transform wrapping any Table -> Table function
/// (parse, filter, project, join-with-reference, featurize...).
class TransformOp final : public Operator {
 public:
  TransformOp(std::string name, storage::DataClass out_class,
              std::function<sql::Table(const sql::Table&)> fn)
      : name_(std::move(name)), class_(out_class), fn_(std::move(fn)) {}

  const std::string& name() const override { return name_; }
  storage::DataClass output_class() const override { return class_; }
  Batch process(Batch in) override {
    in.table = fn_(in.table);
    return in;
  }

 private:
  std::string name_;
  storage::DataClass class_;
  std::function<sql::Table(const sql::Table&)> fn_;
};

/// Stateful tumbling-window aggregation with watermark-driven emission:
/// rows buffer per window until the watermark passes window end, then the
/// window is aggregated and emitted exactly once. This is the paper's
/// "aggregated over designated time intervals (e.g., every 15 seconds)".
class WindowAggOp final : public Operator {
 public:
  WindowAggOp(std::string name, std::string time_column, common::Duration window,
              std::vector<std::string> keys, std::vector<sql::AggSpec> aggs,
              common::Duration allowed_lateness = 0);

  const std::string& name() const override { return name_; }
  storage::DataClass output_class() const override { return storage::DataClass::kSilver; }
  Batch process(Batch in) override;
  Batch flush() override;

  void begin_batch() override;
  void commit_batch() override;
  void rollback_batch() override;

  std::size_t pending_windows() const { return pending_.size(); }
  std::uint64_t late_rows_dropped() const { return late_dropped_; }

  std::vector<std::uint8_t> checkpoint_state() const override;
  void restore_state(std::span<const std::uint8_t> data) override;

 private:
  Batch emit_ready(common::TimePoint watermark);

  std::string name_;
  std::string time_column_;
  common::Duration window_;
  std::vector<std::string> keys_;
  std::vector<sql::AggSpec> aggs_;
  common::Duration lateness_;
  std::map<common::TimePoint, sql::Table> pending_;  ///< window start -> buffered rows
  common::TimePoint max_emitted_ = INT64_MIN;
  std::uint64_t late_dropped_ = 0;

  // Batch-transaction bookkeeping: row counts at begin_batch (windows
  // absent from this map were created during the batch), the emission
  // set awaiting commit, and scalar state to restore on rollback.
  std::map<common::TimePoint, std::size_t> batch_sizes_;
  std::vector<common::TimePoint> emitted_uncommitted_;
  common::TimePoint max_emitted_snapshot_ = INT64_MIN;
  std::uint64_t late_dropped_snapshot_ = 0;
};

/// Stateful exponentially-weighted moving average per key: appends a
/// smoothed column to every row that flows through. The standard
/// dashboard smoothing stage (LVA trend lines, health-panel damping) —
/// state is O(keys), so batch rollback snapshots are cheap.
class EwmaOp final : public Operator {
 public:
  /// `alpha` in (0,1]: weight of the newest observation.
  EwmaOp(std::string name, std::vector<std::string> key_columns, std::string value_column,
         double alpha, std::string output_column = "ewma");

  const std::string& name() const override { return name_; }
  storage::DataClass output_class() const override { return storage::DataClass::kSilver; }
  Batch process(Batch in) override;

  void begin_batch() override { snapshot_ = state_; }
  void commit_batch() override { snapshot_.clear(); }
  void rollback_batch() override { state_ = std::move(snapshot_); }

  std::vector<std::uint8_t> checkpoint_state() const override;
  void restore_state(std::span<const std::uint8_t> data) override;

  std::size_t tracked_keys() const { return state_.size(); }

 private:
  std::string name_;
  std::vector<std::string> key_columns_;
  std::string value_column_;
  double alpha_;
  std::string output_column_;
  std::map<std::string, double> state_;     ///< encoded key -> current EWMA
  std::map<std::string, double> snapshot_;  ///< begin_batch copy
};

/// In-stream model inference: applies a scoring function to configured
/// feature columns of every row and appends the score (plus an optional
/// boolean alert column). This is how registry models reach "downstream
/// inference workloads" (Fig 9) — e.g. an AnomalyDetector scoring node
/// telemetry as it flows to the LAKE.
class InferenceOp final : public Operator {
 public:
  using ScoreFn = std::function<double(std::span<const double>)>;

  InferenceOp(std::string name, std::vector<std::string> feature_columns, ScoreFn score,
              std::string score_column = "score", double alert_threshold = 0.0,
              std::string alert_column = "");

  const std::string& name() const override { return name_; }
  storage::DataClass output_class() const override { return storage::DataClass::kGold; }
  Batch process(Batch in) override;

  std::uint64_t rows_scored() const { return rows_scored_; }
  std::uint64_t alerts() const { return alerts_; }

 private:
  std::string name_;
  std::vector<std::string> feature_columns_;
  ScoreFn score_;
  std::string score_column_;
  double alert_threshold_;
  std::string alert_column_;
  std::uint64_t rows_scored_ = 0;
  std::uint64_t alerts_ = 0;
};

}  // namespace oda::pipeline
