#include "governance/maturity.hpp"

#include <stdexcept>

namespace oda::governance {

const char* maturity_name(Maturity m) {
  switch (m) {
    case Maturity::kL0_Identified: return "L0";
    case Maturity::kL1_Collected: return "L1";
    case Maturity::kL2_Explored: return "L2";
    case Maturity::kL3_Refined: return "L3";
    case Maturity::kL4_Integrated: return "L4";
    case Maturity::kL5_Operational: return "L5";
  }
  return "?";
}

const char* area_name(UsageArea a) {
  switch (a) {
    case UsageArea::kSystemMgmt: return "System Mgmt";
    case UsageArea::kUserAssist: return "User Assist";
    case UsageArea::kFacilityMgmt: return "Facility Mgmt";
    case UsageArea::kCyberSec: return "Cyber Sec";
    case UsageArea::kApps: return "Apps";
    case UsageArea::kProgramMgmt: return "Program Mgmt";
    case UsageArea::kProcurement: return "Procurement";
    case UsageArea::kRnD: return "R&D";
  }
  return "?";
}

const char* area_description(UsageArea a) {
  switch (a) {
    case UsageArea::kSystemMgmt:
      return "System performance, stability and reliability ensurance: compute, interconnect, storage";
    case UsageArea::kUserAssist:
      return "Diagnostics for swift troubleshooting and solutions";
    case UsageArea::kFacilityMgmt:
      return "Reliable and energy efficient power and cooling supply system design and operations";
    case UsageArea::kCyberSec:
      return "Detection, diagnosis and prevention of security issues";
    case UsageArea::kApps:
      return "Runtime performance monitoring and optimization, tuning, energy efficiency";
    case UsageArea::kProgramMgmt:
      return "Resource allocation, coordination, and reporting to sponsors";
    case UsageArea::kProcurement:
      return "Technology integration, tuning, testing, and projection for future systems";
    case UsageArea::kRnD:
      return "Performance optimization, reliability projection, energy usage optimization";
  }
  return "?";
}

const char* source_name(DataSource s) {
  switch (s) {
    case DataSource::kComputePerfCounters: return "Compute: perf counters";
    case DataSource::kComputeResourceUtil: return "Compute: resource util";
    case DataSource::kComputePowerTemp: return "Compute: power & temp";
    case DataSource::kComputeStorageClient: return "Compute: storage client";
    case DataSource::kComputeInterconnectClient: return "Compute: interconnect client";
    case DataSource::kStorageSystem: return "Storage system";
    case DataSource::kInterconnect: return "Interconnect";
    case DataSource::kSyslogEvents: return "Syslog & events";
    case DataSource::kResourceManager: return "Resource manager";
    case DataSource::kCrm: return "CRM";
    case DataSource::kFacility: return "Facility";
  }
  return "?";
}

const MaturityCell& MaturityMatrix::cell(DataSource s, UsageArea a) const {
  return cells_[static_cast<std::size_t>(s)][static_cast<std::size_t>(a)];
}

void MaturityMatrix::set(DataSource s, UsageArea a, std::optional<Maturity> mountain,
                         std::optional<Maturity> compass, bool owner) {
  auto& c = cells_[static_cast<std::size_t>(s)][static_cast<std::size_t>(a)];
  c.mountain = mountain;
  c.compass = compass;
  c.owner = owner;
}

MaturityMatrix MaturityMatrix::paper_figure3() {
  using S = DataSource;
  using A = UsageArea;
  auto L = [](int v) { return std::optional<Maturity>(static_cast<Maturity>(v)); };
  MaturityMatrix m;
  // Cells transcribed from Fig 3 (left value: Mountain, right: Compass).
  m.set(S::kComputePerfCounters, A::kApps, L(0), L(0));
  m.set(S::kComputePerfCounters, A::kProcurement, L(0), L(0));
  m.set(S::kComputePerfCounters, A::kRnD, L(0), L(0));

  m.set(S::kComputeResourceUtil, A::kUserAssist, L(0), L(0));
  m.set(S::kComputeResourceUtil, A::kApps, L(0), L(1));
  m.set(S::kComputeResourceUtil, A::kProgramMgmt, L(5), L(5));
  m.set(S::kComputeResourceUtil, A::kProcurement, L(2), L(1));
  m.set(S::kComputeResourceUtil, A::kRnD, L(0), L(1));

  m.set(S::kComputePowerTemp, A::kSystemMgmt, L(1), L(1), /*owner=*/true);
  m.set(S::kComputePowerTemp, A::kUserAssist, L(0), L(3));
  m.set(S::kComputePowerTemp, A::kFacilityMgmt, L(4), L(4));
  m.set(S::kComputePowerTemp, A::kApps, L(2), L(2));
  m.set(S::kComputePowerTemp, A::kProcurement, L(1), L(1));
  m.set(S::kComputePowerTemp, A::kRnD, L(5), L(3));

  m.set(S::kComputeStorageClient, A::kSystemMgmt, L(1), L(1), true);
  m.set(S::kComputeStorageClient, A::kUserAssist, L(5), L(5));
  m.set(S::kComputeStorageClient, A::kApps, L(0), L(1));
  m.set(S::kComputeStorageClient, A::kProcurement, L(2), L(1));
  m.set(S::kComputeStorageClient, A::kRnD, L(5), L(1));

  m.set(S::kComputeInterconnectClient, A::kSystemMgmt, L(1), L(1), true);
  m.set(S::kComputeInterconnectClient, A::kUserAssist, L(5), L(5));
  m.set(S::kComputeInterconnectClient, A::kApps, L(0), L(1));
  m.set(S::kComputeInterconnectClient, A::kProcurement, L(2), L(0));
  m.set(S::kComputeInterconnectClient, A::kRnD, L(0), L(1));

  m.set(S::kStorageSystem, A::kSystemMgmt, L(4), L(2), true);
  m.set(S::kStorageSystem, A::kProcurement, L(2), L(0));
  m.set(S::kStorageSystem, A::kRnD, L(0), L(0));

  m.set(S::kInterconnect, A::kSystemMgmt, L(0), L(0), true);
  m.set(S::kInterconnect, A::kUserAssist, L(0), L(0));
  m.set(S::kInterconnect, A::kProcurement, L(2), L(1));
  m.set(S::kInterconnect, A::kRnD, L(0), L(0));

  m.set(S::kSyslogEvents, A::kSystemMgmt, L(5), L(5), true);
  m.set(S::kSyslogEvents, A::kUserAssist, L(5), L(5));
  m.set(S::kSyslogEvents, A::kFacilityMgmt, L(4), L(1));
  m.set(S::kSyslogEvents, A::kCyberSec, L(5), L(4));
  m.set(S::kSyslogEvents, A::kProcurement, L(4), L(2));
  m.set(S::kSyslogEvents, A::kRnD, L(4), L(1));

  m.set(S::kResourceManager, A::kSystemMgmt, L(5), L(5), true);
  m.set(S::kResourceManager, A::kUserAssist, L(5), L(5));
  m.set(S::kResourceManager, A::kCyberSec, L(5), L(4));
  m.set(S::kResourceManager, A::kProgramMgmt, L(5), L(5));
  m.set(S::kResourceManager, A::kProcurement, L(5), L(4));
  m.set(S::kResourceManager, A::kRnD, L(5), L(3));

  m.set(S::kCrm, A::kUserAssist, L(5), L(5));
  m.set(S::kCrm, A::kProgramMgmt, L(5), L(5), true);
  m.set(S::kCrm, A::kProcurement, L(1), L(1));

  m.set(S::kFacility, A::kFacilityMgmt, L(5), L(4), true);
  m.set(S::kFacility, A::kProcurement, L(5), L(5));
  m.set(S::kFacility, A::kRnD, L(4), L(3));
  return m;
}

double MaturityMatrix::coverage(Maturity level, bool compass_generation) const {
  std::size_t populated = 0, at_or_above = 0;
  for (std::size_t s = 0; s < kNumSources; ++s) {
    for (std::size_t a = 0; a < kNumAreas; ++a) {
      const auto& v = compass_generation ? cells_[s][a].compass : cells_[s][a].mountain;
      if (!v) continue;
      ++populated;
      if (*v >= level) ++at_or_above;
    }
  }
  return populated ? static_cast<double>(at_or_above) / static_cast<double>(populated) : 0.0;
}

std::size_t MaturityMatrix::regressed_cells() const {
  std::size_t n = 0;
  for (std::size_t s = 0; s < kNumSources; ++s) {
    for (std::size_t a = 0; a < kNumAreas; ++a) {
      const auto& c = cells_[s][a];
      if (c.mountain && c.compass && *c.compass < *c.mountain) ++n;
    }
  }
  return n;
}

std::size_t MaturityMatrix::populated_cells() const {
  std::size_t n = 0;
  for (std::size_t s = 0; s < kNumSources; ++s) {
    for (std::size_t a = 0; a < kNumAreas; ++a) {
      if (cells_[s][a].mountain || cells_[s][a].compass) ++n;
    }
  }
  return n;
}

sql::Table MaturityMatrix::to_table() const {
  using sql::DataType;
  using sql::Value;
  sql::Table t{sql::Schema{{"source", DataType::kString},
                           {"area", DataType::kString},
                           {"mountain", DataType::kString},
                           {"compass", DataType::kString},
                           {"owner", DataType::kBool}}};
  for (std::size_t s = 0; s < kNumSources; ++s) {
    for (std::size_t a = 0; a < kNumAreas; ++a) {
      const auto& c = cells_[s][a];
      if (!c.mountain && !c.compass) continue;
      t.append_row({Value(source_name(static_cast<DataSource>(s))),
                    Value(area_name(static_cast<UsageArea>(a))),
                    c.mountain ? Value(maturity_name(*c.mountain)) : Value::null(),
                    c.compass ? Value(maturity_name(*c.compass)) : Value::null(), Value(c.owner)});
    }
  }
  return t;
}

}  // namespace oda::governance
