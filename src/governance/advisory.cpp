#include "governance/advisory.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace oda::governance {

const char* consideration_name(Consideration c) {
  switch (c) {
    case Consideration::kDataOwner: return "Data Owner";
    case Consideration::kCyberSecurity: return "Cyber Security";
    case Consideration::kLegal: return "Legal";
    case Consideration::kIrb: return "IRB";
    case Consideration::kManagement: return "Management";
  }
  return "?";
}

const char* consideration_description(Consideration c) {
  switch (c) {
    case Consideration::kDataOwner:
      return "Considers purpose and potential interpretation of the data that can harm ongoing operations";
    case Consideration::kCyberSecurity:
      return "Prevent leakage of PII data or information that can identify certain projects or users";
    case Consideration::kLegal:
      return "Guidance on contractual obligations and national regulatory concerns";
    case Consideration::kIrb:
      return "Oversees protection of human subjects in research";
    case Consideration::kManagement:
      return "Organizational approval reviewing alignment with the facility mission";
  }
  return "?";
}

const char* request_kind_name(RequestKind k) {
  switch (k) {
    case RequestKind::kInternalProject: return "internal-project";
    case RequestKind::kExternalCollaboration: return "external-collaboration";
    case RequestKind::kPublicRelease: return "public-release";
  }
  return "?";
}

const char* request_state_name(RequestState s) {
  switch (s) {
    case RequestState::kSubmitted: return "submitted";
    case RequestState::kUnderReview: return "under-review";
    case RequestState::kApproved: return "approved";
    case RequestState::kSanitizing: return "sanitizing";
    case RequestState::kProvisioned: return "provisioned";
    case RequestState::kRejected: return "rejected";
  }
  return "?";
}

bool AdvisoryChainConfig::required(RequestKind kind, Consideration c) const {
  switch (kind) {
    case RequestKind::kInternalProject:
      // Internal staff projects clear owner + security + management.
      return c == Consideration::kDataOwner || c == Consideration::kCyberSecurity ||
             c == Consideration::kManagement;
    case RequestKind::kExternalCollaboration:
      return c != Consideration::kIrb;  // IRB only when human subjects involved
    case RequestKind::kPublicRelease:
      return true;  // full chain
  }
  return true;
}

std::uint64_t DataRuc::submit(RequestKind kind, std::string requester, std::vector<std::string> datasets,
                              std::string purpose, common::TimePoint now) {
  DataRequest r;
  r.request_id = next_id_++;
  r.kind = kind;
  r.requester = std::move(requester);
  r.datasets = std::move(datasets);
  r.purpose = std::move(purpose);
  r.submitted_at = now;
  r.state = RequestState::kSubmitted;
  const std::uint64_t id = r.request_id;
  requests_[id] = std::move(r);
  return id;
}

RequestState DataRuc::process(std::uint64_t request_id) {
  DataRequest& r = requests_.at(request_id);
  if (r.state != RequestState::kSubmitted) return r.state;
  r.state = RequestState::kUnderReview;

  common::TimePoint clock = r.submitted_at;
  for (std::size_t i = 0; i < kNumConsiderations; ++i) {
    const auto c = static_cast<Consideration>(i);
    if (!config_.required(r.kind, c)) continue;
    // Reviews proceed serially through the chain (the paper's workflow),
    // each taking a lognormally distributed latency.
    const double mean_s = common::to_seconds(config_.mean_review_latency);
    const double latency_s = rng_.lognormal(std::log(mean_s), 0.5);
    clock += common::from_seconds(latency_s);

    ReviewDecision d;
    d.consideration = c;
    d.decided_at = clock;
    d.approved = !rng_.bernoulli(config_.reject_prob[i]);
    d.note = d.approved ? "approved" : "rejected: revise and resubmit";
    r.decisions.push_back(d);
    if (!d.approved) {
      r.state = RequestState::kRejected;
      r.resolved_at = clock;
      return r.state;
    }
  }
  r.state = RequestState::kApproved;

  // External and public paths require sanitization before provisioning.
  if (r.kind != RequestKind::kInternalProject) {
    r.state = RequestState::kSanitizing;
    clock += common::from_seconds(
        rng_.lognormal(std::log(common::to_seconds(12 * common::kHour)), 0.4));
  }
  r.state = RequestState::kProvisioned;
  r.resolved_at = clock;
  return r.state;
}

const DataRequest& DataRuc::request(std::uint64_t request_id) const { return requests_.at(request_id); }

std::vector<const DataRequest*> DataRuc::all_requests() const {
  std::vector<const DataRequest*> out;
  out.reserve(requests_.size());
  for (const auto& [_, r] : requests_) out.push_back(&r);
  return out;
}

common::Duration DataRuc::mean_turnaround(RequestKind kind) const {
  common::Duration total = 0;
  std::size_t n = 0;
  for (const auto& [_, r] : requests_) {
    if (r.kind != kind || r.resolved_at == 0) continue;
    total += r.turnaround();
    ++n;
  }
  return n ? total / static_cast<common::Duration>(n) : 0;
}

std::size_t DataRuc::approved_count() const {
  return static_cast<std::size_t>(
      std::count_if(requests_.begin(), requests_.end(),
                    [](const auto& kv) { return kv.second.state == RequestState::kProvisioned; }));
}

std::size_t DataRuc::rejected_count() const {
  return static_cast<std::size_t>(
      std::count_if(requests_.begin(), requests_.end(),
                    [](const auto& kv) { return kv.second.state == RequestState::kRejected; }));
}

}  // namespace oda::governance
