#include "governance/anonymize.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "common/bytes.hpp"
#include "sql/ops.hpp"

namespace oda::governance {

using sql::DataType;
using sql::Table;
using sql::Value;

sql::Table sanitize(const Table& t, const SanitizePolicy& policy) {
  // Output schema: original minus dropped columns.
  std::vector<std::string> keep;
  for (const auto& f : t.schema().fields()) {
    if (std::find(policy.drop_columns.begin(), policy.drop_columns.end(), f.name) ==
        policy.drop_columns.end()) {
      keep.push_back(f.name);
    }
  }
  Table out = sql::project(t, keep);

  // Hash identity columns in place (rebuild those columns).
  for (const auto& name : policy.hash_columns) {
    const std::size_t c = out.schema().index_of(name);
    if (c == sql::Schema::npos) continue;
    // Rebuild the table with the hashed column.
    Table rebuilt{out.schema()};
    rebuilt.reserve(out.num_rows());
    std::vector<Value> row(out.num_columns());
    for (std::size_t r = 0; r < out.num_rows(); ++r) {
      for (std::size_t cc = 0; cc < out.num_columns(); ++cc) row[cc] = out.column(cc).get(r);
      if (!row[c].is_null()) {
        const std::uint64_t h = common::fnv1a(row[c].to_string(), policy.salt);
        char buf[32];
        std::snprintf(buf, sizeof(buf), "anon_%016llx", static_cast<unsigned long long>(h));
        row[c] = Value(std::string(buf));
      }
      rebuilt.append_row(row);
    }
    out = std::move(rebuilt);
  }
  return out;
}

std::size_t min_group_size(const Table& t, const std::vector<std::string>& quasi_identifiers) {
  if (t.num_rows() == 0) return 0;
  std::vector<std::size_t> cols;
  cols.reserve(quasi_identifiers.size());
  for (const auto& q : quasi_identifiers) cols.push_back(t.col_index(q));
  std::unordered_map<std::string, std::size_t> counts;
  std::string buf;
  for (std::size_t r = 0; r < t.num_rows(); ++r) {
    sql::encode_key(t, cols, r, buf);
    counts[buf]++;
  }
  std::size_t mn = t.num_rows();
  for (const auto& [_, n] : counts) mn = std::min(mn, n);
  return mn;
}

bool passes_pii_scan(const Table& t) {
  static const char* kMarkers[] = {"user", "email", "ssn", "phone", "address"};
  auto contains_marker = [](const std::string& s) {
    std::string lower(s);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    for (const char* m : kMarkers) {
      if (lower.find(m) != std::string::npos) return true;
    }
    return lower.find('@') != std::string::npos;
  };
  for (const auto& f : t.schema().fields()) {
    if (contains_marker(f.name)) return false;
  }
  for (std::size_t c = 0; c < t.num_columns(); ++c) {
    if (t.column(c).type() != DataType::kString) continue;
    for (std::size_t r = 0; r < t.num_rows(); ++r) {
      if (!t.column(c).is_null(r) && contains_marker(t.column(c).str_at(r))) return false;
    }
  }
  return true;
}

}  // namespace oda::governance
