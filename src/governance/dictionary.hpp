// Data dictionary built during "data exploration campaigns" (Sec VI-A):
// qualitative knowledge about every stream — sample rate, failure rate,
// sensor location, meaning — and a completeness metric that quantifies
// the paper's "limited information during the data discovery phase".
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace oda::governance {

struct FieldEntry {
  std::string name;
  std::string units;
  std::string description;
  common::Duration sample_period = 0;
  double observed_loss_rate = 0.0;
  std::string physical_location;  ///< e.g. "node VRM", "CDU secondary loop"
  bool vendor_verified = false;   ///< authoritative meaning confirmed (Sec VI-A)

  /// Entry completeness in [0,1]: fraction of fields filled in.
  double completeness() const;
};

struct DatasetEntry {
  std::string dataset;
  std::string owner_area;
  std::string source_system;
  std::vector<FieldEntry> fields;
};

class DataDictionary {
 public:
  void register_dataset(DatasetEntry entry);
  const DatasetEntry* find(const std::string& dataset) const;
  std::vector<std::string> datasets() const;

  /// Add/overwrite a field description.
  void describe_field(const std::string& dataset, FieldEntry field);

  /// Mean completeness across all fields of a dataset (1.0 = fully
  /// documented; low values flag the discovery bottleneck of Sec VI).
  double completeness(const std::string& dataset) const;
  double overall_completeness() const;
  /// Fields whose meaning is not vendor-verified (the costly follow-ups).
  std::vector<std::string> unverified_fields(const std::string& dataset) const;

 private:
  std::map<std::string, DatasetEntry> entries_;
};

}  // namespace oda::governance
