// Constellation: the site-wide public data repository ([28][29]) that
// approved, sanitized artifacts are released to (Fig 12's terminal node;
// the channel behind the paper's released power/energy [48], GPU-failure
// [49], Darshan [50][51] and HPL [52] datasets). Mints DOIs, stores
// landing metadata + the curated blob, and tracks downloads.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "governance/advisory.hpp"
#include "governance/anonymize.hpp"
#include "sql/table.hpp"

namespace oda::governance {

struct DatasetLanding {
  std::string doi;            ///< e.g. "10.13139/SIM/0000042"
  std::string title;
  std::string description;
  std::vector<std::string> creators;
  common::TimePoint published = 0;
  std::size_t size_bytes = 0;
  std::uint64_t content_hash = 0;
  std::uint64_t request_id = 0;  ///< the DataRUC approval backing the release
  std::uint64_t downloads = 0;
};

class Constellation {
 public:
  explicit Constellation(std::string doi_prefix = "10.13139/SIM") : prefix_(std::move(doi_prefix)) {}

  /// Publish a curated blob; returns the minted DOI.
  std::string publish(const std::string& title, const std::string& description,
                      std::vector<std::string> creators, std::vector<std::uint8_t> blob,
                      std::uint64_t request_id, common::TimePoint now);

  std::optional<DatasetLanding> landing(const std::string& doi) const;
  /// Download the blob (bumps the landing counter).
  std::optional<std::vector<std::uint8_t>> download(const std::string& doi);
  std::vector<DatasetLanding> catalog() const;

 private:
  std::string prefix_;
  std::uint64_t next_id_ = 1;
  std::map<std::string, DatasetLanding> landings_;
  std::map<std::string, std::vector<std::uint8_t>> blobs_;
};

/// The full Fig 12 release path as one operation: DataRUC review →
/// sanitize → k-anonymity + PII gates → Constellation publish. Returns
/// the DOI on success, nullopt when any gate rejects (with `why` set).
struct ReleaseRequest {
  std::string title;
  std::string description;
  std::vector<std::string> creators;
  std::string requester;
  SanitizePolicy sanitize_policy;
  std::vector<std::string> quasi_identifiers;  ///< for the k-anonymity gate
  std::size_t min_k = 2;
};

std::optional<std::string> release_dataset(DataRuc& ruc, Constellation& repo,
                                           const sql::Table& artifact, const ReleaseRequest& req,
                                           common::TimePoint now, std::string* why = nullptr);

}  // namespace oda::governance
