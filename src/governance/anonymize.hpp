// Sanitization/anonymization applied before external release (Sec IX-B):
// salted hashing of identity columns, column dropping, and a simple
// k-anonymity check over quasi-identifier groups.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sql/table.hpp"

namespace oda::governance {

struct SanitizePolicy {
  std::vector<std::string> hash_columns;  ///< identities → salted pseudonyms
  std::vector<std::string> drop_columns;  ///< outright removal (PII)
  std::uint64_t salt = 0x5eed5a17;        ///< per-release salt
};

/// Apply the policy; hashed values become "anon_<16hex>".
sql::Table sanitize(const sql::Table& t, const SanitizePolicy& policy);

/// Smallest group size over the given quasi-identifier columns; a
/// release satisfies k-anonymity when this is >= k.
std::size_t min_group_size(const sql::Table& t, const std::vector<std::string>& quasi_identifiers);

/// True when no column name or string cell matches obvious PII markers
/// ("user", "email", "@", ...). Heuristic gate used by the release path.
bool passes_pii_scan(const sql::Table& t);

}  // namespace oda::governance
