#include "governance/constellation.hpp"

#include <cstdio>

#include "common/bytes.hpp"
#include "storage/columnar.hpp"

namespace oda::governance {

std::string Constellation::publish(const std::string& title, const std::string& description,
                                   std::vector<std::string> creators, std::vector<std::uint8_t> blob,
                                   std::uint64_t request_id, common::TimePoint now) {
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), "/%07llu", static_cast<unsigned long long>(next_id_++));
  const std::string doi = prefix_ + suffix;

  DatasetLanding landing;
  landing.doi = doi;
  landing.title = title;
  landing.description = description;
  landing.creators = std::move(creators);
  landing.published = now;
  landing.size_bytes = blob.size();
  landing.content_hash = common::fnv1a(std::span<const std::uint8_t>(blob.data(), blob.size()));
  landing.request_id = request_id;
  landings_[doi] = std::move(landing);
  blobs_[doi] = std::move(blob);
  return doi;
}

std::optional<DatasetLanding> Constellation::landing(const std::string& doi) const {
  auto it = landings_.find(doi);
  if (it == landings_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::vector<std::uint8_t>> Constellation::download(const std::string& doi) {
  auto it = blobs_.find(doi);
  if (it == blobs_.end()) return std::nullopt;
  landings_[doi].downloads++;
  return it->second;
}

std::vector<DatasetLanding> Constellation::catalog() const {
  std::vector<DatasetLanding> out;
  out.reserve(landings_.size());
  for (const auto& [_, l] : landings_) out.push_back(l);
  return out;
}

std::optional<std::string> release_dataset(DataRuc& ruc, Constellation& repo,
                                           const sql::Table& artifact, const ReleaseRequest& req,
                                           common::TimePoint now, std::string* why) {
  auto fail = [&](const std::string& reason) -> std::optional<std::string> {
    if (why) *why = reason;
    return std::nullopt;
  };

  // 1. Advisory chain (Table II) through the DataRUC.
  const auto request_id =
      ruc.submit(RequestKind::kPublicRelease, req.requester, {req.title}, req.description, now);
  if (ruc.process(request_id) != RequestState::kProvisioned) {
    return fail("advisory chain rejected the release");
  }

  // 2. Sanitization with curation guidance.
  const sql::Table sanitized = sanitize(artifact, req.sanitize_policy);

  // 3. Safety gates.
  if (!req.quasi_identifiers.empty() &&
      min_group_size(sanitized, req.quasi_identifiers) < req.min_k) {
    return fail("k-anonymity gate failed (group smaller than k)");
  }
  if (!passes_pii_scan(sanitized)) {
    return fail("PII scan found residual markers");
  }

  // 4. Curate into the public columnar format and publish.
  const auto blob = storage::write_columnar(sanitized);
  return repo.publish(req.title, req.description, req.creators,
                      std::vector<std::uint8_t>(blob.begin(), blob.end()), request_id, now);
}

}  // namespace oda::governance
