// The data governance machinery of Sec IX: the advisory chain
// (Table II) and the DataRUC request workflow (Fig 12), modelled as an
// auditable state machine with simulated review latencies.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"

namespace oda::governance {

/// Table II: the five considerations every data usage request clears.
enum class Consideration : std::uint8_t {
  kDataOwner = 0,
  kCyberSecurity = 1,
  kLegal = 2,
  kIrb = 3,
  kManagement = 4,
};
inline constexpr std::size_t kNumConsiderations = 5;
const char* consideration_name(Consideration c);
const char* consideration_description(Consideration c);

enum class RequestKind : std::uint8_t {
  kInternalProject = 0,     ///< staff project: access to STREAM/LAKE/OCEAN
  kExternalCollaboration = 1,  ///< e.g. university collaboration
  kPublicRelease = 2,       ///< dataset/publication release
};
const char* request_kind_name(RequestKind k);

enum class RequestState : std::uint8_t {
  kSubmitted = 0,
  kUnderReview = 1,
  kApproved = 2,
  kSanitizing = 3,   ///< external/release paths only
  kProvisioned = 4,  ///< access granted / artifact released
  kRejected = 5,
};
const char* request_state_name(RequestState s);

struct ReviewDecision {
  Consideration consideration;
  bool approved = false;
  common::TimePoint decided_at = 0;
  std::string note;
};

struct DataRequest {
  std::uint64_t request_id = 0;
  RequestKind kind = RequestKind::kInternalProject;
  std::string requester;
  std::vector<std::string> datasets;
  std::string purpose;
  common::TimePoint submitted_at = 0;
  RequestState state = RequestState::kSubmitted;
  std::vector<ReviewDecision> decisions;
  common::TimePoint resolved_at = 0;

  common::Duration turnaround() const {
    return resolved_at > 0 ? resolved_at - submitted_at : 0;
  }
};

struct AdvisoryChainConfig {
  /// Mean review latency per consideration (lognormal around this).
  common::Duration mean_review_latency = 2 * common::kDay;
  /// Per-consideration rejection probabilities (strictness varies).
  double reject_prob[kNumConsiderations] = {0.02, 0.05, 0.03, 0.04, 0.02};
  /// Which considerations each request kind must clear.
  /// Internal projects skip Legal/IRB; releases clear everything.
  bool required(RequestKind kind, Consideration c) const;
};

/// DataRUC: the data resource usage committee front door (Fig 12).
class DataRuc {
 public:
  explicit DataRuc(AdvisoryChainConfig config, common::Rng rng) : config_(config), rng_(rng) {}
  DataRuc() : DataRuc(AdvisoryChainConfig{}, common::Rng(7)) {}

  /// Submit a request at facility time `now`; returns its id.
  std::uint64_t submit(RequestKind kind, std::string requester, std::vector<std::string> datasets,
                       std::string purpose, common::TimePoint now);

  /// Drive the request through the whole advisory chain, simulating
  /// review latencies. Returns the final state.
  RequestState process(std::uint64_t request_id);

  const DataRequest& request(std::uint64_t request_id) const;
  std::vector<const DataRequest*> all_requests() const;

  /// Mean turnaround of resolved requests of a kind.
  common::Duration mean_turnaround(RequestKind kind) const;
  std::size_t approved_count() const;
  std::size_t rejected_count() const;

 private:
  AdvisoryChainConfig config_;
  common::Rng rng_;
  std::map<std::uint64_t, DataRequest> requests_;
  std::uint64_t next_id_ = 1;
};

}  // namespace oda::governance
