// Data-stream maturity model (Fig 2) and the area × source readiness
// matrix (Fig 3) for the two system generations.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sql/table.hpp"

namespace oda::governance {

/// L0..L5 readiness stages from Fig 2's stream-establishment process.
enum class Maturity : std::uint8_t {
  kL0_Identified = 0,   ///< use case identified, no data yet
  kL1_Collected = 1,    ///< raw stream lands somewhere
  kL2_Explored = 2,     ///< data dictionary / quality understood
  kL3_Refined = 3,      ///< Silver pipeline exists
  kL4_Integrated = 4,   ///< feeding dashboards/reports
  kL5_Operational = 5,  ///< relied on in day-to-day operations
};
const char* maturity_name(Maturity m);

/// Operational areas of Table I (column axis of Fig 3).
enum class UsageArea : std::uint8_t {
  kSystemMgmt = 0,
  kUserAssist = 1,
  kFacilityMgmt = 2,
  kCyberSec = 3,
  kApps = 4,
  kProgramMgmt = 5,
  kProcurement = 6,
  kRnD = 7,
};
inline constexpr std::size_t kNumAreas = 8;
const char* area_name(UsageArea a);
/// Table I description of what the area uses operational data for.
const char* area_description(UsageArea a);

/// Data sources (row axis of Fig 3).
enum class DataSource : std::uint8_t {
  kComputePerfCounters = 0,
  kComputeResourceUtil = 1,
  kComputePowerTemp = 2,
  kComputeStorageClient = 3,
  kComputeInterconnectClient = 4,
  kStorageSystem = 5,
  kInterconnect = 6,
  kSyslogEvents = 7,
  kResourceManager = 8,
  kCrm = 9,
  kFacility = 10,
};
inline constexpr std::size_t kNumSources = 11;
const char* source_name(DataSource s);

struct MaturityCell {
  std::optional<Maturity> mountain;  ///< prior generation
  std::optional<Maturity> compass;   ///< current generation
  bool owner = false;                ///< this area produces the source
};

/// The full Fig 3 matrix, seeded from the paper's published cells.
class MaturityMatrix {
 public:
  /// Empty matrix (all cells unset).
  MaturityMatrix() = default;
  /// Matrix populated with the paper's Fig 3 values.
  static MaturityMatrix paper_figure3();

  const MaturityCell& cell(DataSource s, UsageArea a) const;
  void set(DataSource s, UsageArea a, std::optional<Maturity> mountain,
           std::optional<Maturity> compass, bool owner = false);

  /// Fraction of populated cells at or above `level` for a generation.
  double coverage(Maturity level, bool compass_generation) const;
  /// Cells where the newer generation lags the older (regression risk
  /// the paper highlights: re-work on each new system).
  std::size_t regressed_cells() const;
  std::size_t populated_cells() const;

  /// Render as a table: (source, area, mountain, compass, owner).
  sql::Table to_table() const;

 private:
  MaturityCell cells_[kNumSources][kNumAreas];
};

}  // namespace oda::governance
