#include "governance/dictionary.hpp"

namespace oda::governance {

double FieldEntry::completeness() const {
  int filled = 0, total = 5;
  if (!units.empty()) ++filled;
  if (!description.empty()) ++filled;
  if (sample_period > 0) ++filled;
  if (!physical_location.empty()) ++filled;
  if (vendor_verified) ++filled;
  return static_cast<double>(filled) / total;
}

void DataDictionary::register_dataset(DatasetEntry entry) {
  entries_[entry.dataset] = std::move(entry);
}

const DatasetEntry* DataDictionary::find(const std::string& dataset) const {
  auto it = entries_.find(dataset);
  return it == entries_.end() ? nullptr : &it->second;
}

std::vector<std::string> DataDictionary::datasets() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, _] : entries_) out.push_back(name);
  return out;
}

void DataDictionary::describe_field(const std::string& dataset, FieldEntry field) {
  auto& entry = entries_[dataset];
  if (entry.dataset.empty()) entry.dataset = dataset;
  for (auto& f : entry.fields) {
    if (f.name == field.name) {
      f = std::move(field);
      return;
    }
  }
  entry.fields.push_back(std::move(field));
}

double DataDictionary::completeness(const std::string& dataset) const {
  const DatasetEntry* e = find(dataset);
  if (!e || e->fields.empty()) return 0.0;
  double total = 0.0;
  for (const auto& f : e->fields) total += f.completeness();
  return total / static_cast<double>(e->fields.size());
}

double DataDictionary::overall_completeness() const {
  double total = 0.0;
  std::size_t n = 0;
  for (const auto& [_, e] : entries_) {
    for (const auto& f : e.fields) {
      total += f.completeness();
      ++n;
    }
  }
  return n ? total / static_cast<double>(n) : 0.0;
}

std::vector<std::string> DataDictionary::unverified_fields(const std::string& dataset) const {
  std::vector<std::string> out;
  const DatasetEntry* e = find(dataset);
  if (!e) return out;
  for (const auto& f : e->fields) {
    if (!f.vendor_verified) out.push_back(f.name);
  }
  return out;
}

}  // namespace oda::governance
