#include "core/framework.hpp"

#include <stdexcept>

#include "observe/metrics.hpp"
#include "pipeline/self_telemetry.hpp"
#include "sql/expr.hpp"
#include "sql/ops.hpp"
#include "telemetry/codec.hpp"

namespace oda::core {

using common::Duration;
using common::TimePoint;
using pipeline::BrokerSource;
using pipeline::StreamingQuery;
using sql::Table;
using sql::Value;

OdaFramework::OdaFramework(FrameworkConfig config)
    : config_(config), tiers_(broker_, lake_, ocean_, glacier_, config.retention) {}

telemetry::FacilitySimulator& OdaFramework::add_system(telemetry::SystemSpec spec,
                                                       telemetry::SimulatorConfig config) {
  systems_.push_back(std::make_unique<telemetry::FacilitySimulator>(std::move(spec), broker_, config));
  return *systems_.back();
}

telemetry::FacilitySimulator& OdaFramework::system(const std::string& name) {
  for (auto& s : systems_) {
    if (s->spec().name == name) return *s;
  }
  throw std::out_of_range("OdaFramework: unknown system '" + name + "'");
}

std::vector<std::string> OdaFramework::system_names() const {
  std::vector<std::string> out;
  out.reserve(systems_.size());
  for (const auto& s : systems_) out.push_back(s->spec().name);
  return out;
}

std::unique_ptr<StreamingQuery> OdaFramework::make_bronze_to_silver_power(const std::string& system_name) {
  const auto topics = telemetry::TopicNames::for_system(system_name);
  pipeline::QueryConfig qc;
  qc.name = "bronze_to_silver_power." + system_name;
  qc.max_records_per_batch = 8192;
  // Watermark slack: consumption interleaves the topic's partitions, so
  // event times within a poll can be skewed by up to a batch's span.
  // Without this, windows close early and skewed rows drop as late.
  qc.allowed_lateness = 2 * common::kMinute;
  auto q = std::make_unique<StreamingQuery>(
      qc, std::make_unique<BrokerSource>(broker_, topics.power, "silver-pipeline." + system_name,
                                         telemetry::packets_to_bronze));
  q->add_operator(std::make_unique<pipeline::WindowAggOp>(
      "window_agg_15s", "time", config_.silver_window,
      std::vector<std::string>{"node_id", "sensor"},
      std::vector<sql::AggSpec>{{"value", sql::AggKind::kMean, "mean_value"},
                                {"value", sql::AggKind::kMin, "min_value"},
                                {"value", sql::AggKind::kMax, "max_value"},
                                {"value", sql::AggKind::kCount, "samples"}}));
  q->add_sink(std::make_unique<pipeline::TopicSink>(broker_, "silver.power." + system_name));
  q->add_sink(std::make_unique<pipeline::OceanSink>(ocean_, "silver/power/" + system_name,
                                                    storage::DataClass::kSilver));
  return q;
}

std::unique_ptr<StreamingQuery> OdaFramework::make_silver_to_lake(const std::string& system_name,
                                                                  const std::string& sensor_label,
                                                                  const std::string& metric) {
  broker_.create_topic("silver.power." + system_name);
  pipeline::QueryConfig qc;
  qc.name = "silver_to_lake." + metric + "." + system_name;
  qc.time_column = "window_start";
  auto q = std::make_unique<StreamingQuery>(
      qc, std::make_unique<BrokerSource>(broker_, "silver.power." + system_name,
                                         "lake." + metric + "." + system_name,
                                         pipeline::decode_columnar_records));
  q->add_transform("filter_" + sensor_label, storage::DataClass::kSilver,
                   [sensor_label](const Table& t) {
                     return sql::filter(t, sql::col("sensor") == sql::lit(Value(sensor_label)));
                   });
  q->add_sink(std::make_unique<pipeline::LakeSink>(lake_, metric, "window_start", "mean_value",
                                                   std::vector<std::string>{"node_id"}));
  return q;
}

std::unique_ptr<StreamingQuery> OdaFramework::make_silver_to_lake_max(const std::string& system_name,
                                                                      const std::string& sensor_prefix,
                                                                      const std::string& sensor_suffix,
                                                                      const std::string& metric) {
  broker_.create_topic("silver.power." + system_name);
  pipeline::QueryConfig qc;
  qc.name = "silver_to_lake_max." + metric + "." + system_name;
  qc.time_column = "window_start";
  auto q = std::make_unique<StreamingQuery>(
      qc, std::make_unique<BrokerSource>(broker_, "silver.power." + system_name,
                                         "lake-max." + metric + "." + system_name,
                                         pipeline::decode_columnar_records));
  q->add_transform(
      "max_" + sensor_prefix + "*" + sensor_suffix, storage::DataClass::kSilver,
      [sensor_prefix, sensor_suffix](const Table& t) {
        if (t.num_rows() == 0) return t;
        std::vector<std::size_t> keep;
        const auto& sensors = t.column("sensor");
        for (std::size_t r = 0; r < t.num_rows(); ++r) {
          const std::string& s = sensors.str_at(r);
          const bool prefix_ok = s.rfind(sensor_prefix, 0) == 0;
          const bool suffix_ok = s.size() >= sensor_suffix.size() &&
                                 s.compare(s.size() - sensor_suffix.size(), sensor_suffix.size(),
                                           sensor_suffix) == 0;
          if (prefix_ok && suffix_ok) keep.push_back(r);
        }
        const Table matched = t.take(keep);
        if (matched.num_rows() == 0) return Table(matched.schema());
        return sql::group_by(matched, {"window_start", "node_id"},
                             {sql::AggSpec{"mean_value", sql::AggKind::kMax, "max_value"}});
      });
  q->add_sink(std::make_unique<pipeline::LakeSink>(lake_, metric, "window_start", "max_value",
                                                   std::vector<std::string>{"node_id"}));
  return q;
}

std::unique_ptr<StreamingQuery> OdaFramework::make_bronze_archiver(const std::string& system_name) {
  const auto topics = telemetry::TopicNames::for_system(system_name);
  pipeline::QueryConfig qc;
  qc.name = "bronze_archiver." + system_name;
  qc.max_records_per_batch = 16384;
  auto q = std::make_unique<StreamingQuery>(
      qc, std::make_unique<BrokerSource>(broker_, topics.power, "bronze-archive." + system_name,
                                         telemetry::packets_to_bronze));
  q->add_sink(std::make_unique<pipeline::OceanSink>(ocean_, "bronze/power/" + system_name,
                                                    storage::DataClass::kBronze));
  return q;
}

std::unique_ptr<StreamingQuery> OdaFramework::make_ost_to_lake(const std::string& system_name) {
  const auto topics = telemetry::TopicNames::for_system(system_name);
  pipeline::QueryConfig qc;
  qc.name = "ost_to_lake." + system_name;
  auto q = std::make_unique<StreamingQuery>(
      qc, std::make_unique<BrokerSource>(broker_, topics.storage, "lake-ost." + system_name,
                                         telemetry::ost_samples_to_table));
  q->add_sink(std::make_unique<pipeline::LakeSink>(lake_, "ost_latency_ms", "time", "latency_ms",
                                                   std::vector<std::string>{"ost"}));
  return q;
}

std::unique_ptr<StreamingQuery> OdaFramework::make_fabric_to_lake(const std::string& system_name) {
  const auto topics = telemetry::TopicNames::for_system(system_name);
  pipeline::QueryConfig qc;
  qc.name = "fabric_to_lake." + system_name;
  auto q = std::make_unique<StreamingQuery>(
      qc, std::make_unique<BrokerSource>(broker_, topics.fabric, "lake-fabric." + system_name,
                                         telemetry::switch_samples_to_table));
  q->add_sink(std::make_unique<pipeline::LakeSink>(lake_, "switch_stall_pct", "time",
                                                   "congestion_stall_pct",
                                                   std::vector<std::string>{"switch_id"}));
  return q;
}

StreamingQuery& OdaFramework::register_query(std::unique_ptr<StreamingQuery> q) {
  queries_.push_back(std::move(q));
  return *queries_.back();
}

void OdaFramework::enable_self_telemetry(observe::ScraperConfig config) {
  if (scraper_) return;
  history_ = std::make_unique<observe::HistoryStore>();
  scraper_ = pipeline::make_scraper(observe::default_registry(), broker_, config);
  history_query_ = &register_query(pipeline::make_history_query(broker_, *history_));
}

void OdaFramework::flush_self_telemetry() {
  if (!scraper_) return;
  scraper_->scrape(now_);
  history_query_->run_until_caught_up();
}

std::size_t OdaFramework::persist_self_telemetry_gold() {
  if (!history_) return 0;
  return pipeline::persist_history_gold(*history_, ocean_, "_oda/gold/metrics", now_);
}

void OdaFramework::advance(Duration dt, Duration step) {
  const TimePoint target = now_ + dt;
  while (now_ < target) {
    const Duration chunk = std::min(step, target - now_);
    for (auto& s : systems_) s->step(chunk);
    now_ += chunk;
    // Mirror the facility clock into the observability layer so spans and
    // SLO evaluations are stamped with deterministic virtual time.
    observe::set_virtual_now(now_);
    // Self-telemetry scrapes before queries drain, so the _oda.history
    // query folds this step's samples into the store in the same step.
    if (scraper_) scraper_->poll(now_);
    for (auto& q : queries_) q->run_until_caught_up();
    if (now_ - last_retention_ >= config_.retention_sweep_period) {
      tiers_.enforce(now_);
      last_retention_ = now_;
    }
  }
}

std::vector<ml::JobProfile> OdaFramework::extract_job_profiles(const std::string& system_name,
                                                               std::size_t min_samples) {
  auto& sys = system(system_name);
  std::vector<ml::JobProfile> profiles;
  for (const auto& job : sys.scheduler().jobs()) {
    if (job.start_time == 0 || job.end_time <= 0 || job.end_time > now_) continue;  // not finished
    // Whole-job power = sum over the job's nodes of each bucket's mean.
    std::map<TimePoint, double> buckets;
    for (std::uint32_t node : job.nodes) {
      storage::TsQuery q;
      q.metric = "node_power_w";
      q.tag_filter = {{"node_id", std::to_string(node)}};
      q.t0 = job.start_time;
      q.t1 = job.end_time;
      const Table series = lake_.query(q);
      for (std::size_t r = 0; r < series.num_rows(); ++r) {
        buckets[series.column("time").int_at(r)] += series.column("value").double_at(r);
      }
    }
    if (buckets.size() < min_samples) continue;
    ml::JobProfile p;
    p.job_id = job.job_id;
    p.true_archetype = static_cast<std::size_t>(job.archetype);
    p.power_w.reserve(buckets.size());
    for (const auto& [_, v] : buckets) p.power_w.push_back(v);
    profiles.push_back(std::move(p));
  }
  return profiles;
}

}  // namespace oda::core
