// OdaFramework: the end-to-end ODA platform of the paper — one object
// that owns the tiered data services (Fig 5), hosts simulated systems
// (the instrumented HPC environment of Fig 1), wires the canonical
// Bronze→Silver→Gold pipelines (Fig 4-b), and exposes the artifacts the
// well-packaged applications and ML pipelines consume.
//
// Quickstart:
//   oda::core::OdaFramework fw;
//   auto& sys = fw.add_system(oda::telemetry::compass_spec(0.01));
//   fw.register_query(fw.make_bronze_to_silver_power(sys.spec().name));
//   fw.register_query(fw.make_silver_to_lake(sys.spec().name, "node.power_w", "node_power_w"));
//   fw.advance(10 * oda::common::kMinute);   // stream + refine
//   auto latest = fw.lake().latest("node_power_w");
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/allocations.hpp"
#include "core/control_loop.hpp"
#include "governance/advisory.hpp"
#include "governance/dictionary.hpp"
#include "governance/maturity.hpp"
#include "ml/profile_classifier.hpp"
#include "ml/registry.hpp"
#include "observe/history.hpp"
#include "observe/scraper.hpp"
#include "pipeline/query.hpp"
#include "storage/tiers.hpp"
#include "telemetry/simulator.hpp"

namespace oda::core {

struct FrameworkConfig {
  storage::TierRetention retention;
  common::Duration silver_window = 15 * common::kSecond;  ///< the paper's 15s interval
  common::Duration retention_sweep_period = common::kHour;
};

class OdaFramework {
 public:
  explicit OdaFramework(FrameworkConfig config = {});

  // --- tiered data services (Fig 5) ---------------------------------------
  stream::Broker& broker() { return broker_; }
  storage::TimeSeriesDb& lake() { return lake_; }
  storage::ObjectStore& ocean() { return ocean_; }
  storage::TapeArchive& glacier() { return glacier_; }
  storage::TierManager& tiers() { return tiers_; }

  // --- organizational services ---------------------------------------------
  governance::DataRuc& dataruc() { return dataruc_; }
  governance::DataDictionary& dictionary() { return dictionary_; }
  ml::FeatureStore& feature_store() { return feature_store_; }
  ml::ModelRegistry& model_registry() { return model_registry_; }
  ml::ExperimentTracker& experiments() { return experiments_; }
  AllocationManager& allocations() { return allocations_; }

  // --- systems ----------------------------------------------------------
  telemetry::FacilitySimulator& add_system(telemetry::SystemSpec spec,
                                           telemetry::SimulatorConfig config = {});
  telemetry::FacilitySimulator& system(const std::string& name);
  std::vector<std::string> system_names() const;

  // --- canonical pipelines (Fig 4-b anatomy) -----------------------------
  /// Bronze power packets → 15s window aggregate per (node, sensor) →
  /// Silver stream topic "silver.power.<sys>" + OCEAN dataset
  /// "silver/power/<sys>".
  std::unique_ptr<pipeline::StreamingQuery> make_bronze_to_silver_power(const std::string& system_name);

  /// Silver stream → filter one sensor → LAKE metric (real-time
  /// diagnostics path). Each call uses its own consumer group, so many
  /// LAKE projections can fan out from one Silver stream.
  std::unique_ptr<pipeline::StreamingQuery> make_silver_to_lake(const std::string& system_name,
                                                                const std::string& sensor_label,
                                                                const std::string& metric);

  /// Silver stream → worst reading across matching sensors per node →
  /// LAKE metric. E.g. prefix "gpu", suffix ".temp_c" yields the hottest
  /// GPU per node — what thermal dashboards and anomaly detectors watch.
  std::unique_ptr<pipeline::StreamingQuery> make_silver_to_lake_max(const std::string& system_name,
                                                                    const std::string& sensor_prefix,
                                                                    const std::string& sensor_suffix,
                                                                    const std::string& metric);

  /// Raw Bronze → OCEAN archive dataset "bronze/power/<sys>" (the frozen
  /// Bronze path of Sec VI-B; objects later migrate to GLACIER).
  std::unique_ptr<pipeline::StreamingQuery> make_bronze_archiver(const std::string& system_name);

  /// OST server telemetry → LAKE metric "ost_latency_ms" (per-OST tags).
  /// Low-volume server streams skip the Silver stage and land directly.
  std::unique_ptr<pipeline::StreamingQuery> make_ost_to_lake(const std::string& system_name);

  /// Fabric switch telemetry → LAKE metric "switch_stall_pct".
  std::unique_ptr<pipeline::StreamingQuery> make_fabric_to_lake(const std::string& system_name);

  /// Register a query with the framework's run loop.
  pipeline::StreamingQuery& register_query(std::unique_ptr<pipeline::StreamingQuery> q);
  const std::vector<std::unique_ptr<pipeline::StreamingQuery>>& queries() const { return queries_; }

  // --- self-telemetry loop (DESIGN.md §9) --------------------------------
  /// Turn on the loop: a Scraper snapshotting the process registry onto
  /// `_oda.metrics` at config.cadence (polled each advance step), plus a
  /// registered `_oda.history` query folding the samples into history().
  /// Idempotent; the config of the first call wins.
  void enable_self_telemetry(observe::ScraperConfig config = {});
  bool self_telemetry_enabled() const { return scraper_ != nullptr; }
  /// Scrape now and drain the history query — the final state flush
  /// callers run after their last advance/tick (also invoked once per
  /// advance step implicitly via poll + the query loop).
  void flush_self_telemetry();
  /// Persist gold rollups to OCEAN under "_oda/gold/metrics"; returns
  /// objects written (0 when the loop is off or history is empty).
  std::size_t persist_self_telemetry_gold();
  observe::Scraper* scraper() { return scraper_.get(); }
  observe::HistoryStore* history() { return history_.get(); }

  /// Advance facility time: step all systems, drain all queries, and
  /// periodically run tier retention.
  void advance(common::Duration dt, common::Duration step = 15 * common::kSecond);

  common::TimePoint now() const { return now_; }

  // --- Gold extraction -------------------------------------------------
  /// Per-job whole-job power profiles assembled from the LAKE's Silver
  /// node_power series joined with the scheduler log — the input to the
  /// Fig 10 classifier. Jobs shorter than `min_samples` buckets are
  /// skipped.
  std::vector<ml::JobProfile> extract_job_profiles(const std::string& system_name,
                                                   std::size_t min_samples = 8);

  const FrameworkConfig& config() const { return config_; }

 private:
  FrameworkConfig config_;
  stream::Broker broker_;
  storage::TimeSeriesDb lake_;
  storage::ObjectStore ocean_;
  storage::TapeArchive glacier_;
  storage::TierManager tiers_;
  governance::DataRuc dataruc_;
  governance::DataDictionary dictionary_;
  ml::FeatureStore feature_store_;
  ml::ModelRegistry model_registry_;
  ml::ExperimentTracker experiments_;
  AllocationManager allocations_;
  std::vector<std::unique_ptr<telemetry::FacilitySimulator>> systems_;
  std::vector<std::unique_ptr<pipeline::StreamingQuery>> queries_;
  std::unique_ptr<observe::Scraper> scraper_;
  std::unique_ptr<observe::HistoryStore> history_;
  pipeline::StreamingQuery* history_query_ = nullptr;  ///< owned by queries_
  common::TimePoint now_ = 0;
  common::TimePoint last_retention_ = 0;
};

}  // namespace oda::core
