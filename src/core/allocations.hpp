// Project-specific resource allocations (Sec V-C): the Slate/PaaS-style
// coordination of compute, memory and storage across staff data projects,
// "enabling higher utilization of physical resources".
#pragma once

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace oda::core {

struct ResourceGrant {
  double node_hours = 0.0;     ///< HPC batch allocation
  double storage_gb = 0.0;     ///< OCEAN/project storage
  double service_slots = 0.0;  ///< continuous-uptime app platform slots
};

struct ProjectUsage {
  ResourceGrant granted;
  ResourceGrant used;
};

/// Thread-safe: the serve layer's QueryScheduler consumes/releases
/// service slots from concurrent worker threads, so every operation
/// takes an internal mutex. Grants are doubles; consume/release are
/// check-then-commit under that lock (no TOCTOU between dimensions).
class AllocationManager {
 public:
  /// Register or extend a project's grant.
  void grant(const std::string& project, const ResourceGrant& add);

  /// Attempt to consume resources; returns false (and consumes nothing)
  /// if any dimension would exceed the grant.
  bool consume(const std::string& project, const ResourceGrant& amount);

  /// Return previously consumed resources (e.g. a finished query's
  /// service slots). Usage clamps at zero per dimension — releasing more
  /// than was consumed is a caller bug, not an underflow.
  void release(const std::string& project, const ResourceGrant& amount);

  std::optional<ProjectUsage> usage(const std::string& project) const;
  std::vector<std::string> projects() const;

  /// Facility-wide utilization per dimension in [0,1] (used/granted).
  ResourceGrant aggregate_utilization() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, ProjectUsage> projects_;
};

}  // namespace oda::core
