// Data exploration campaigns (Sec VI): "path-finding activities
// [that] concentrate resources to address various challenges once and
// for all" — profile a pile of raw Bronze data, build the data
// dictionary, and derive the upstream Silver pipeline that should be
// stood up (window size, expected footprint), because "the primary
// bottleneck in HPC operational intelligence lies within the initial
// stage of large-scale stream exploration".
#pragma once

#include <string>
#include <vector>

#include "common/time.hpp"
#include "governance/dictionary.hpp"
#include "storage/object_store.hpp"

namespace oda::core {

/// What the campaign learns about one sensor stream inside a Bronze
/// dataset — the quantitative half of a data-dictionary entry.
struct StreamProfile {
  std::string sensor;
  std::size_t observations = 0;
  std::size_t nodes = 0;
  common::Duration sample_period = 0;  ///< modal inter-sample gap
  double loss_rate = 0.0;              ///< fraction of expected samples missing
  double min_value = 0.0;
  double max_value = 0.0;
  double mean_value = 0.0;
  /// Heuristic unit guess from the sensor naming convention.
  std::string inferred_unit;
};

struct CampaignReport {
  std::string dataset;
  std::size_t objects_scanned = 0;
  std::size_t rows_scanned = 0;
  common::TimePoint t_min = 0;
  common::TimePoint t_max = 0;
  std::vector<StreamProfile> streams;

  // The campaign's actionable output: the upstream Silver pipeline spec.
  common::Duration recommended_window = 0;
  double bronze_rows_per_hour = 0.0;
  double silver_rows_per_hour = 0.0;
  double row_reduction() const {
    return silver_rows_per_hour > 0 ? bronze_rows_per_hour / silver_rows_per_hour : 0.0;
  }
};

class ExplorationCampaign {
 public:
  explicit ExplorationCampaign(const storage::ObjectStore& ocean) : ocean_(ocean) {}

  /// Scan every object of a Bronze dataset (schema: time, node_id,
  /// sensor, value) and profile its streams.
  CampaignReport explore(const std::string& bronze_dataset) const;

  /// Fold the findings into the organization's data dictionary
  /// (quantitative fields filled; meaning/location left for the SME).
  void document(const CampaignReport& report, governance::DataDictionary& dictionary) const;

 private:
  const storage::ObjectStore& ocean_;
};

}  // namespace oda::core
