// The manual operational feedback control loops of Fig 1 / Fig 4-c.
// Each operational domain closes its loop at a characteristic timescale,
// which dictates the latency budget of the pipelines feeding it.
#pragma once

#include <string>
#include <vector>

#include "common/time.hpp"

namespace oda::core {

struct ControlLoop {
  std::string domain;            ///< e.g. "system health monitoring"
  std::string actor;             ///< who closes the loop
  common::Duration timescale;    ///< decision cadence
  common::Duration latency_budget;  ///< max tolerable ingestion->insight delay
  std::string consumes;          ///< data artifacts it runs on
};

/// The facility's standard loops, ordered fastest to slowest (Fig 4-c).
const std::vector<ControlLoop>& standard_control_loops();

/// Latency budget for a named domain; throws if unknown.
common::Duration latency_budget(const std::string& domain);

}  // namespace oda::core
