#include "core/allocations.hpp"

#include <algorithm>

namespace oda::core {

void AllocationManager::grant(const std::string& project, const ResourceGrant& add) {
  std::lock_guard lk(mu_);
  auto& p = projects_[project];
  p.granted.node_hours += add.node_hours;
  p.granted.storage_gb += add.storage_gb;
  p.granted.service_slots += add.service_slots;
}

bool AllocationManager::consume(const std::string& project, const ResourceGrant& amount) {
  std::lock_guard lk(mu_);
  auto it = projects_.find(project);
  if (it == projects_.end()) return false;
  ProjectUsage& p = it->second;
  if (p.used.node_hours + amount.node_hours > p.granted.node_hours) return false;
  if (p.used.storage_gb + amount.storage_gb > p.granted.storage_gb) return false;
  if (p.used.service_slots + amount.service_slots > p.granted.service_slots) return false;
  p.used.node_hours += amount.node_hours;
  p.used.storage_gb += amount.storage_gb;
  p.used.service_slots += amount.service_slots;
  return true;
}

void AllocationManager::release(const std::string& project, const ResourceGrant& amount) {
  std::lock_guard lk(mu_);
  auto it = projects_.find(project);
  if (it == projects_.end()) return;
  ProjectUsage& p = it->second;
  p.used.node_hours = std::max(0.0, p.used.node_hours - amount.node_hours);
  p.used.storage_gb = std::max(0.0, p.used.storage_gb - amount.storage_gb);
  p.used.service_slots = std::max(0.0, p.used.service_slots - amount.service_slots);
}

std::optional<ProjectUsage> AllocationManager::usage(const std::string& project) const {
  std::lock_guard lk(mu_);
  auto it = projects_.find(project);
  if (it == projects_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> AllocationManager::projects() const {
  std::lock_guard lk(mu_);
  std::vector<std::string> out;
  out.reserve(projects_.size());
  for (const auto& [name, _] : projects_) out.push_back(name);
  return out;
}

ResourceGrant AllocationManager::aggregate_utilization() const {
  std::lock_guard lk(mu_);
  ResourceGrant granted, used;
  for (const auto& [_, p] : projects_) {
    granted.node_hours += p.granted.node_hours;
    granted.storage_gb += p.granted.storage_gb;
    granted.service_slots += p.granted.service_slots;
    used.node_hours += p.used.node_hours;
    used.storage_gb += p.used.storage_gb;
    used.service_slots += p.used.service_slots;
  }
  ResourceGrant util;
  util.node_hours = granted.node_hours > 0 ? used.node_hours / granted.node_hours : 0.0;
  util.storage_gb = granted.storage_gb > 0 ? used.storage_gb / granted.storage_gb : 0.0;
  util.service_slots = granted.service_slots > 0 ? used.service_slots / granted.service_slots : 0.0;
  return util;
}

}  // namespace oda::core
