#include "core/campaign.hpp"

#include <algorithm>
#include <map>

#include "storage/columnar.hpp"

namespace oda::core {

using common::Duration;
using common::TimePoint;

namespace {

/// Per-sensor accumulation during the scan.
struct Acc {
  std::size_t n = 0;
  double sum = 0.0;
  double mn = 0.0, mx = 0.0;
  /// Per-node last timestamp and gap histogram (gap -> count).
  std::map<std::int64_t, TimePoint> last_seen;
  std::map<Duration, std::size_t> gaps;
};

std::string infer_unit(const std::string& sensor) {
  if (sensor.size() >= 8 && sensor.compare(sensor.size() - 8, 8, ".power_w") == 0) return "W";
  if (sensor.size() >= 7 && sensor.compare(sensor.size() - 7, 7, ".temp_c") == 0) return "C";
  if (sensor.size() >= 9 && sensor.compare(sensor.size() - 9, 9, ".energy_j") == 0) return "J";
  return "";
}

}  // namespace

CampaignReport ExplorationCampaign::explore(const std::string& bronze_dataset) const {
  CampaignReport report;
  report.dataset = bronze_dataset;
  report.t_min = INT64_MAX;
  report.t_max = INT64_MIN;

  std::map<std::string, Acc> accs;
  for (const auto& meta : ocean_.list(bronze_dataset)) {
    const auto blob = ocean_.get(meta.key);
    if (!blob) continue;
    ++report.objects_scanned;
    const sql::Table t = storage::read_columnar(*blob);
    if (!t.schema().contains("sensor") || !t.schema().contains("time")) continue;
    const auto& times = t.column("time");
    const auto& nodes = t.column("node_id");
    const auto& sensors = t.column("sensor");
    const auto& values = t.column("value");
    for (std::size_t r = 0; r < t.num_rows(); ++r) {
      ++report.rows_scanned;
      const TimePoint time = times.int_at(r);
      report.t_min = std::min(report.t_min, time);
      report.t_max = std::max(report.t_max, time);
      Acc& acc = accs[sensors.str_at(r)];
      const double v = values.is_null(r) ? 0.0 : values.double_at(r);
      if (acc.n == 0) {
        acc.mn = acc.mx = v;
      } else {
        acc.mn = std::min(acc.mn, v);
        acc.mx = std::max(acc.mx, v);
      }
      acc.sum += v;
      ++acc.n;
      const std::int64_t node = nodes.int_at(r);
      const auto it = acc.last_seen.find(node);
      if (it != acc.last_seen.end() && time > it->second) {
        acc.gaps[time - it->second]++;
      }
      acc.last_seen[node] = time;
    }
  }
  if (report.t_min == INT64_MAX) {
    report.t_min = report.t_max = 0;
    return report;
  }

  const double span_hours =
      std::max(1e-9, common::to_seconds(report.t_max - report.t_min) / 3600.0);
  Duration fastest_period = 0;
  std::size_t total_nodes = 0;
  for (auto& [sensor, acc] : accs) {
    StreamProfile p;
    p.sensor = sensor;
    p.observations = acc.n;
    p.nodes = acc.last_seen.size();
    p.mean_value = acc.n ? acc.sum / static_cast<double>(acc.n) : 0.0;
    p.min_value = acc.mn;
    p.max_value = acc.mx;
    p.inferred_unit = infer_unit(sensor);
    // Modal gap = the stream's native cadence; larger gaps are drops.
    Duration modal = 0;
    std::size_t best = 0;
    for (const auto& [gap, count] : acc.gaps) {
      if (count > best) {
        best = count;
        modal = gap;
      }
    }
    p.sample_period = modal;
    if (modal > 0) {
      const double expected =
          static_cast<double>(p.nodes) * common::to_seconds(report.t_max - report.t_min) /
          common::to_seconds(modal);
      p.loss_rate = expected > 0 ? std::clamp(1.0 - static_cast<double>(acc.n) / expected, 0.0, 1.0)
                                 : 0.0;
      fastest_period = fastest_period == 0 ? modal : std::min(fastest_period, modal);
    }
    total_nodes = std::max(total_nodes, p.nodes);
    report.streams.push_back(std::move(p));
  }
  std::sort(report.streams.begin(), report.streams.end(),
            [](const StreamProfile& a, const StreamProfile& b) { return a.sensor < b.sensor; });

  // Pipeline recommendation: window >= 10 native samples, floor 15 s
  // (the paper's canonical interval).
  report.recommended_window =
      std::max<Duration>(15 * common::kSecond, fastest_period > 0 ? 10 * fastest_period : 0);
  report.bronze_rows_per_hour = static_cast<double>(report.rows_scanned) / span_hours;
  const double windows_per_hour = 3600.0 / common::to_seconds(report.recommended_window);
  report.silver_rows_per_hour =
      static_cast<double>(report.streams.size()) * static_cast<double>(total_nodes) *
      windows_per_hour;
  return report;
}

void ExplorationCampaign::document(const CampaignReport& report,
                                   governance::DataDictionary& dictionary) const {
  for (const auto& p : report.streams) {
    governance::FieldEntry entry;
    entry.name = p.sensor;
    entry.units = p.inferred_unit;
    entry.sample_period = p.sample_period;
    entry.observed_loss_rate = p.loss_rate;
    // Meaning and physical location need the SME/vendor loop (Sec VI-A);
    // the campaign leaves them blank and vendor_verified = false.
    dictionary.describe_field(report.dataset, std::move(entry));
  }
}

}  // namespace oda::core
