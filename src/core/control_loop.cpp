#include "core/control_loop.hpp"

#include <stdexcept>

namespace oda::core {

using namespace common;

const std::vector<ControlLoop>& standard_control_loops() {
  static const std::vector<ControlLoop> kLoops = {
      {"system health monitoring", "system administrators", 15 * kSecond, 30 * kSecond,
       "Silver node telemetry (LAKE)"},
      {"security response", "cyber security operations", kMinute, 2 * kMinute,
       "real-time event feed (STREAM)"},
      {"facility cooling operations", "facility engineers", 5 * kMinute, 5 * kMinute,
       "plant telemetry + twin predictions"},
      {"user ticket diagnosis", "user assistance", kHour, 15 * kMinute,
       "job-context dashboards (LAKE+RM)"},
      {"job scheduling policy", "operations + program mgmt", kDay, kHour,
       "RATS usage/burn-rate reports"},
      {"energy efficiency tuning", "R&D / energy efficiency", 7 * kDay, kDay,
       "Gold job power profiles (OCEAN)"},
      {"allocation program reporting", "program management", 30 * kDay, kDay,
       "Gold usage rollups (OCEAN)"},
      {"system design & procurement", "procurement / system design", 365 * kDay, 30 * kDay,
       "multi-year telemetry archives (OCEAN+GLACIER)"},
  };
  return kLoops;
}

common::Duration latency_budget(const std::string& domain) {
  for (const auto& loop : standard_control_loops()) {
    if (loop.domain == domain) return loop.latency_budget;
  }
  throw std::out_of_range("unknown control loop domain: " + domain);
}

}  // namespace oda::core
