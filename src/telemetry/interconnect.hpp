// Interconnect telemetry ("Interconnect" and "Compute: interconnect
// client" rows of Fig 3): per-node NIC counters driven by each job's
// communication intensity, plus fabric switch-level aggregates with
// congestion and link-error modelling.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sql/table.hpp"
#include "stream/record.hpp"
#include "stream/view.hpp"
#include "telemetry/job.hpp"

namespace oda::telemetry {

/// Communication intensity per archetype in bytes/s per node.
struct CommProfile {
  double inject_rate = 0.0;       ///< NIC transmit bytes/s at full utilization
  double message_rate = 0.0;      ///< messages/s (drives small-message overhead)
  bool allreduce_heavy = false;   ///< synchronized collectives (bursty fabric load)
};
CommProfile comm_profile_for(JobArchetype a);

struct NicSample {
  common::TimePoint time = 0;
  std::uint32_t node_id = 0;
  double tx_bytes_s = 0.0;
  double rx_bytes_s = 0.0;
  double messages_s = 0.0;
  std::uint32_t link_errors = 0;  ///< CRC/replay errors this interval
};

struct FabricConfig {
  std::size_t switches = 8;           ///< leaf groups; nodes hash to groups
  double link_bandwidth_bytes_s = 25e9;  ///< per node injection limit
  double switch_bandwidth_bytes_s = 800e9;
  double base_error_rate_per_gb = 0.002;  ///< link errors per GB transferred
};

struct SwitchSample {
  common::TimePoint time = 0;
  std::uint32_t switch_id = 0;
  double throughput_bytes_s = 0.0;
  double utilization = 0.0;
  double congestion_stall_pct = 0.0;  ///< rises super-linearly with load
};

class InterconnectModel {
 public:
  InterconnectModel(FabricConfig config, common::Rng rng);

  /// Sample NIC counters for every node with a running job, and the
  /// per-switch aggregates, for interval [t, t+dt).
  void sample(common::TimePoint t, common::Duration dt, const JobScheduler& sched,
              std::vector<NicSample>& nics_out, std::vector<SwitchSample>& switches_out);

  const FabricConfig& config() const { return config_; }

 private:
  FabricConfig config_;
  common::Rng rng_;
};

// --- wire codecs ---------------------------------------------------------

stream::Record encode_nic_sample(const NicSample& s);
NicSample decode_nic_sample(const stream::Record& r);
NicSample decode_nic_sample(std::string_view payload);
/// Schema: (time, node_id, tx_bytes_s, rx_bytes_s, messages_s, link_errors).
sql::Schema nic_schema();
sql::Table nic_samples_to_table(std::span<const stream::RecordView> records);

stream::Record encode_switch_sample(const SwitchSample& s);
SwitchSample decode_switch_sample(const stream::Record& r);
SwitchSample decode_switch_sample(std::string_view payload);
/// Schema: (time, switch_id, throughput_bytes_s, utilization, congestion_stall_pct).
sql::Schema switch_schema();
sql::Table switch_samples_to_table(std::span<const stream::RecordView> records);

}  // namespace oda::telemetry
