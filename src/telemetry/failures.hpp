// GPU failure injection. Models the double-bit-error failure mode of the
// paper's released GPU snapshot dataset: a thermal precursor window, an
// xid error storm at failure time, then a drained (powered-down) GPU
// until the node returns to service. Gives reliability analytics and the
// ML anomaly detector ground truth to recover.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "telemetry/codec.hpp"

namespace oda::telemetry {

struct FailureEvent {
  std::uint32_t node_id = 0;
  std::uint8_t gpu_index = 0;
  common::TimePoint onset = 0;      ///< precursor (thermal drift) begins
  common::TimePoint failure = 0;    ///< double-bit error, xid storm
  common::TimePoint recovered = 0;  ///< GPU back in service
};

struct FailureConfig {
  /// Mean time between GPU failures across the whole system, in hours.
  /// (Scale-invariant knob: a 9408-node system sees a few per week.)
  double system_mtbf_hours = 400.0;
  common::Duration precursor_lead = 10 * common::kMinute;
  common::Duration drain_duration = 30 * common::kMinute;
  double precursor_temp_rise_c = 12.0;  ///< drift above normal at failure time
  std::size_t xid_burst_events = 24;
};

class FailureInjector {
 public:
  FailureInjector(std::size_t total_nodes, std::size_t gpus_per_node, FailureConfig config,
                  common::Rng rng);

  /// Ensure failures are scheduled out to time `t`.
  void schedule_until(common::TimePoint t);

  /// Thermal bias (deg C) to add to a GPU's reading at time `t`
  /// (ramps linearly through the precursor window).
  double temp_bias(std::uint32_t node, std::uint8_t gpu, common::TimePoint t) const;

  /// True while the GPU is failed/drained (power collapses to ~0).
  bool gpu_down(std::uint32_t node, std::uint8_t gpu, common::TimePoint t) const;

  /// Log events (xid storms) occurring in (from, to].
  std::vector<LogEvent> events_in(common::TimePoint from, common::TimePoint to) const;

  const std::vector<FailureEvent>& failures() const { return failures_; }

 private:
  std::size_t total_nodes_;
  std::size_t gpus_per_node_;
  FailureConfig config_;
  common::Rng rng_;
  common::TimePoint scheduled_until_ = 0;
  std::vector<FailureEvent> failures_;
};

}  // namespace oda::telemetry
