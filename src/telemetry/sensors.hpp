// Per-node power/thermal sensor models.
//
// Utilization (from the job occupying the node) drives component power;
// temperature follows power through a first-order thermal lag. Sensor
// sampling adds measurement noise and drops a configurable fraction of
// samples — the "streamed, skewed, and lossy nature" the paper calls out.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "telemetry/job.hpp"
#include "telemetry/spec.hpp"

namespace oda::telemetry {

class FailureInjector;

/// Compact sensor address within a node: component kind/index + measure.
struct SensorId {
  ComponentKind component = ComponentKind::kNode;
  std::uint8_t index = 0;
  SensorKind kind = SensorKind::kPowerW;

  std::uint16_t encode() const {
    return static_cast<std::uint16_t>((static_cast<std::uint16_t>(component) << 11) |
                                      (static_cast<std::uint16_t>(index & 0x3f) << 5) |
                                      static_cast<std::uint16_t>(kind));
  }
  static SensorId decode(std::uint16_t v) {
    SensorId s;
    s.component = static_cast<ComponentKind>((v >> 11) & 0x1f);
    s.index = static_cast<std::uint8_t>((v >> 5) & 0x3f);
    s.kind = static_cast<SensorKind>(v & 0x1f);
    return s;
  }
  /// Human-readable, e.g. "gpu3.power_w".
  std::string label() const;
};

struct SensorReading {
  std::uint16_t sensor = 0;  ///< SensorId::encode()
  double value = 0.0;
};

/// One per-node telemetry packet per sample tick (how out-of-band BMC
/// collection actually ships data: one blob per node per tick).
struct TelemetryPacket {
  common::TimePoint timestamp = 0;
  std::uint32_t node_id = 0;
  std::vector<SensorReading> readings;
};

/// Evolves per-node component power/temperature and emits packets.
class NodeSensorModel {
 public:
  NodeSensorModel(const SystemSpec& spec, common::Rng rng);

  /// Sample every node at time `now` given current job placement.
  /// `dt` is the elapsed time since the previous sample (thermal lag).
  /// Appends one packet per node to `out` (minus dropped samples).
  /// `failures` (optional) injects GPU thermal precursors and outages.
  void sample_all(common::TimePoint now, common::Duration dt, const JobScheduler& sched,
                  std::vector<TelemetryPacket>& out, const FailureInjector* failures = nullptr);

  /// Instantaneous total IT power (W) at the last sample (truth value for
  /// the digital twin's V&V).
  double total_it_power_w() const { return last_total_power_w_; }

  const SystemSpec& spec() const { return spec_; }

 private:
  struct ComponentState {
    double temp_c = 30.0;
  };

  double component_power(const ComponentSpec& c, double util, common::Rng& noise) const;

  SystemSpec spec_;
  common::Rng rng_;
  /// [node][component_instance] temperature state.
  std::vector<std::vector<ComponentState>> temps_;
  double last_total_power_w_ = 0.0;
};

}  // namespace oda::telemetry
