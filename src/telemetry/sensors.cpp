#include "telemetry/sensors.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/failures.hpp"

namespace oda::telemetry {

using common::Duration;
using common::Rng;
using common::TimePoint;

std::string SensorId::label() const {
  std::string s = component_name(component);
  if (component != ComponentKind::kNode) s += std::to_string(index);
  s += ".";
  s += sensor_name(kind);
  return s;
}

NodeSensorModel::NodeSensorModel(const SystemSpec& spec, Rng rng) : spec_(spec), rng_(rng) {
  std::size_t instances = 0;
  for (const auto& c : spec_.components) instances += c.count;
  temps_.assign(spec_.total_nodes(), {});
  for (auto& node : temps_) {
    node.resize(instances);
    std::size_t i = 0;
    for (const auto& c : spec_.components) {
      for (std::uint8_t k = 0; k < c.count; ++k) node[i++].temp_c = c.idle_temp_c;
    }
  }
}

double NodeSensorModel::component_power(const ComponentSpec& c, double util, Rng& noise) const {
  const double p = c.idle_w + util * (c.peak_w - c.idle_w);
  return std::max(0.0, p * (1.0 + 0.01 * noise.normal()));
}

void NodeSensorModel::sample_all(TimePoint now, Duration dt, const JobScheduler& sched,
                                 std::vector<TelemetryPacket>& out, const FailureInjector* failures) {
  const double dt_s = common::to_seconds(dt);
  constexpr double kThermalTau = 60.0;  // seconds
  const double alpha = std::clamp(dt_s / kThermalTau, 0.0, 1.0);
  double total_power = 0.0;

  const std::size_t n_nodes = spec_.total_nodes();
  out.reserve(out.size() + n_nodes);
  for (std::uint32_t node = 0; node < n_nodes; ++node) {
    const Job* job = sched.job_on_node(node, now);
    Rng jitter = rng_.split((static_cast<std::uint64_t>(node) << 20) ^ static_cast<std::uint64_t>(now));

    double cpu_util = 0.03, gpu_util = 0.01, mem_util = 0.05, nic_util = 0.02;
    if (job) {
      Rng job_jitter = jitter.split(static_cast<std::uint64_t>(job->job_id));
      const double u = job->base_util * archetype_utilization(job->archetype, job->phase_at(now), job_jitter);
      cpu_util = job->uses_gpu ? 0.35 * u + 0.1 : u;
      gpu_util = job->uses_gpu ? u : 0.0;
      mem_util = 0.5 * u + 0.1;
      nic_util = 0.3 * u;
    }

    TelemetryPacket pkt;
    pkt.timestamp = now;
    pkt.node_id = node;

    double node_power = spec_.node_overhead_w;
    std::size_t inst = 0;
    auto& node_temps = temps_[node];
    for (const auto& c : spec_.components) {
      double util = 0.0;
      switch (c.kind) {
        case ComponentKind::kCpu: util = cpu_util; break;
        case ComponentKind::kGpu: util = gpu_util; break;
        case ComponentKind::kMemory: util = mem_util; break;
        case ComponentKind::kNic: util = nic_util; break;
        case ComponentKind::kNode: break;
      }
      for (std::uint8_t k = 0; k < c.count; ++k, ++inst) {
        double comp_util = util;
        double fault_temp_bias = 0.0;
        if (failures && c.kind == ComponentKind::kGpu) {
          if (failures->gpu_down(node, k, now)) comp_util = 0.0;  // drained
          fault_temp_bias = failures->temp_bias(node, k, now);
        }
        const double p = component_power(c, comp_util, jitter);
        node_power += p;
        // First-order lag toward the power-dependent target temperature
        // (plus any failure-precursor drift).
        ComponentState& st = node_temps[inst];
        const double target = c.idle_temp_c + c.temp_per_watt * p + fault_temp_bias;
        st.temp_c += alpha * (target - st.temp_c);

        if (!jitter.bernoulli(spec_.sample_loss_rate)) {
          pkt.readings.push_back({SensorId{c.kind, k, SensorKind::kPowerW}.encode(), p});
        }
        if (!jitter.bernoulli(spec_.sample_loss_rate)) {
          pkt.readings.push_back(
              {SensorId{c.kind, k, SensorKind::kTempC}.encode(), st.temp_c + 0.2 * jitter.normal()});
        }
      }
    }
    // Node-level input power (measured upstream of the 54V->12V stage,
    // so includes conversion loss) and inlet temperature.
    const double input_power = node_power / 0.95;
    total_power += input_power;
    if (!jitter.bernoulli(spec_.sample_loss_rate)) {
      pkt.readings.push_back({SensorId{ComponentKind::kNode, 0, SensorKind::kPowerW}.encode(), input_power});
    }
    if (!jitter.bernoulli(spec_.sample_loss_rate)) {
      pkt.readings.push_back(
          {SensorId{ComponentKind::kNode, 0, SensorKind::kTempC}.encode(), 24.0 + 0.5 * jitter.normal()});
    }
    if (!pkt.readings.empty()) out.push_back(std::move(pkt));
  }
  last_total_power_w_ = total_power;
}

}  // namespace oda::telemetry
