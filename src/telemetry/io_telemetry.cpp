#include "telemetry/io_telemetry.hpp"

#include <algorithm>
#include <cmath>

#include "common/bytes.hpp"

namespace oda::telemetry {

using common::ByteReader;
using common::ByteWriter;
using common::Duration;
using common::Rng;
using common::TimePoint;
using sql::DataType;
using sql::Schema;
using sql::Table;
using sql::Value;

IoProfile io_profile_for(JobArchetype a) {
  switch (a) {
    case JobArchetype::kConstant:  // steady production: modest output stream
      return {5e6, 20e6, 0.5, 1.0};
    case JobArchetype::kRamp:  // HPL-like: reads inputs, writes little
      return {30e6, 2e6, 0.2, 1.0};
    case JobArchetype::kPeriodic:  // tightly coupled: small per-iteration I/O
      return {2e6, 8e6, 0.3, 1.0};
    case JobArchetype::kPhased:  // checkpoint-heavy: big periodic write bursts
      return {10e6, 15e6, 1.0, 20.0};
    case JobArchetype::kSpiky:  // analytics: read-dominated scans
      return {120e6, 10e6, 4.0, 1.0};
    case JobArchetype::kDecay:  // solver: front-loaded reads, final result dump
      return {40e6, 5e6, 0.8, 4.0};
  }
  return {};
}

IoTelemetryModel::IoTelemetryModel(LustreConfig config, Rng rng) : config_(config), rng_(rng) {}

void IoTelemetryModel::sample(TimePoint t, Duration dt, const JobScheduler& sched,
                              std::vector<IoCounters>& jobs_out, std::vector<OstSample>& osts_out) {
  const double dt_s = common::to_seconds(dt);
  std::vector<double> ost_load(config_.num_osts,
                               config_.background_load * config_.ost_bandwidth_bytes_s);

  for (const auto& job : sched.jobs()) {
    if (job.start_time == 0 || job.end_time <= 0 || !job.running_at(t)) continue;
    const IoProfile profile = io_profile_for(job.archetype);
    const double nodes = static_cast<double>(job.num_nodes);
    Rng jitter = rng_.split(static_cast<std::uint64_t>(job.job_id) ^ static_cast<std::uint64_t>(t));

    // Checkpoint phases: phased/decay jobs burst writes during their
    // low-compute windows (I/O and compute alternate).
    bool checkpointing = false;
    if (profile.checkpoint_multiplier > 1.0) {
      const double phase = std::fmod(job.phase_at(t) * 6.0, 1.0);
      checkpointing = phase >= 0.8;  // matches the kPhased utilization dip
    }

    IoCounters c;
    c.job_id = job.job_id;
    c.interval_start = t;
    c.interval = dt;
    const double noise = std::max(0.2, 1.0 + 0.15 * jitter.normal());
    c.bytes_read = profile.read_rate * nodes * dt_s * noise;
    c.bytes_written = profile.write_rate * nodes * dt_s * noise *
                      (checkpointing ? profile.checkpoint_multiplier : 1.0);
    c.opens = static_cast<std::uint32_t>(profile.open_rate * nodes * dt_s / 60.0 + jitter.uniform());
    c.metadata_ops = c.opens * 3 + static_cast<std::uint32_t>(nodes * dt_s / 30.0);
    c.checkpoint_phase = checkpointing ? 1 : 0;

    // Stripe the job's traffic across a job-deterministic OST subset
    // (stripe count grows with job size, as real Lustre layouts do).
    const std::size_t stripe_count =
        std::clamp<std::size_t>(job.num_nodes / 2 + 1, 1, config_.num_osts);
    const double per_ost = (c.bytes_read + c.bytes_written) / dt_s / static_cast<double>(stripe_count);
    const auto base = static_cast<std::size_t>(common::fnv1a(std::to_string(job.job_id)));
    for (std::size_t s = 0; s < stripe_count; ++s) {
      ost_load[(base + s) % config_.num_osts] += per_ost;
    }
    jobs_out.push_back(c);
  }

  osts_out.reserve(osts_out.size() + config_.num_osts);
  for (std::uint32_t o = 0; o < config_.num_osts; ++o) {
    OstSample s;
    s.time = t;
    s.ost = o;
    s.bytes_s = ost_load[o];
    s.utilization = std::min(1.0, ost_load[o] / config_.ost_bandwidth_bytes_s);
    // M/M/1-flavoured queueing latency: explodes as utilization -> 1.
    const double rho = std::min(0.99, s.utilization);
    s.latency_ms = 0.5 + 4.0 * rho / (1.0 - rho);
    osts_out.push_back(s);
  }
}

stream::Record encode_io_counters(const IoCounters& c) {
  ByteWriter w;
  w.i64(c.interval_start);
  w.i64(c.interval);
  w.i64(c.job_id);
  w.f64(c.bytes_read);
  w.f64(c.bytes_written);
  w.u32(c.opens);
  w.u32(c.metadata_ops);
  w.u8(c.checkpoint_phase);
  stream::Record rec;
  rec.timestamp = c.interval_start;
  rec.key = "j" + std::to_string(c.job_id);
  auto bytes = w.take();
  rec.payload.assign(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  return rec;
}

IoCounters decode_io_counters(const stream::Record& r) { return decode_io_counters(std::string_view(r.payload)); }

IoCounters decode_io_counters(std::string_view payload) {
  ByteReader br(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(payload.data()),
                                              payload.size()));
  IoCounters c;
  c.interval_start = br.i64();
  c.interval = br.i64();
  c.job_id = br.i64();
  c.bytes_read = br.f64();
  c.bytes_written = br.f64();
  c.opens = br.u32();
  c.metadata_ops = br.u32();
  c.checkpoint_phase = br.u8();
  return c;
}

Schema io_counters_schema() {
  return Schema{{"time", DataType::kInt64},          {"job_id", DataType::kInt64},
                {"bytes_read", DataType::kFloat64},  {"bytes_written", DataType::kFloat64},
                {"opens", DataType::kInt64},         {"metadata_ops", DataType::kInt64},
                {"checkpointing", DataType::kBool}};
}

Table io_counters_to_table(std::span<const stream::RecordView> records) {
  Table t(io_counters_schema());
  t.reserve(records.size());
  for (const auto& v : records) {
    const IoCounters c = decode_io_counters(v.payload);
    t.append_row({Value(c.interval_start), Value(c.job_id), Value(c.bytes_read),
                  Value(c.bytes_written), Value(static_cast<std::int64_t>(c.opens)),
                  Value(static_cast<std::int64_t>(c.metadata_ops)),
                  Value(c.checkpoint_phase != 0)});
  }
  return t;
}

stream::Record encode_ost_sample(const OstSample& s) {
  ByteWriter w;
  w.i64(s.time);
  w.u32(s.ost);
  w.f64(s.bytes_s);
  w.f64(s.utilization);
  w.f64(s.latency_ms);
  stream::Record rec;
  rec.timestamp = s.time;
  rec.key = "ost" + std::to_string(s.ost);
  auto bytes = w.take();
  rec.payload.assign(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  return rec;
}

OstSample decode_ost_sample(const stream::Record& r) { return decode_ost_sample(std::string_view(r.payload)); }

OstSample decode_ost_sample(std::string_view payload) {
  ByteReader br(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(payload.data()),
                                              payload.size()));
  OstSample s;
  s.time = br.i64();
  s.ost = br.u32();
  s.bytes_s = br.f64();
  s.utilization = br.f64();
  s.latency_ms = br.f64();
  return s;
}

Schema ost_schema() {
  return Schema{{"time", DataType::kInt64},
                {"ost", DataType::kInt64},
                {"bytes_s", DataType::kFloat64},
                {"utilization", DataType::kFloat64},
                {"latency_ms", DataType::kFloat64}};
}

Table ost_samples_to_table(std::span<const stream::RecordView> records) {
  Table t(ost_schema());
  t.reserve(records.size());
  for (const auto& v : records) {
    const OstSample s = decode_ost_sample(v.payload);
    t.append_row({Value(s.time), Value(static_cast<std::int64_t>(s.ost)), Value(s.bytes_s),
                  Value(s.utilization), Value(s.latency_ms)});
  }
  return t;
}

}  // namespace oda::telemetry
