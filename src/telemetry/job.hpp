// Job model + scheduler. Jobs drive node utilization, which drives power
// and thermals; the scheduler log is the context dataset joined into
// Silver artifacts ("integrated with job allocation logs", Sec V-A) and
// the job power-profile archetypes are what the Fig 10 classifier must
// recover.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sql/table.hpp"

namespace oda::telemetry {

/// Canonical power-profile shapes observed in HPC workloads. The ML
/// module plants these and the classifier must recover them (Fig 10).
enum class JobArchetype : std::uint8_t {
  kConstant = 0,   ///< steady compute (dense LA, MD production runs)
  kRamp = 1,       ///< staged start-up then full power (HPL-like)
  kPeriodic = 2,   ///< compute/communication oscillation
  kPhased = 3,     ///< alternating compute and I/O checkpoint phases
  kSpiky = 4,      ///< bursty, irregular (data analytics, workflows)
  kDecay = 5,      ///< front-loaded then tapering (convergent solvers)
};
inline constexpr std::size_t kNumArchetypes = 6;
const char* archetype_name(JobArchetype a);

/// Utilization in [0,1] for a job at normalized phase `x` in [0,1].
/// `jitter` is a per-job random stream for shape variation.
double archetype_utilization(JobArchetype a, double x, common::Rng& jitter);

struct Job {
  std::int64_t job_id = 0;
  std::string project;      ///< charge account, e.g. "AST051"
  std::string user;         ///< anonymizable user handle
  JobArchetype archetype = JobArchetype::kConstant;
  common::TimePoint submit_time = 0;
  common::TimePoint start_time = 0;
  common::TimePoint end_time = 0;  ///< planned; 0 while queued
  std::size_t num_nodes = 0;
  std::vector<std::uint32_t> nodes;  ///< allocated node ids
  double base_util = 1.0;            ///< archetype amplitude scale
  bool uses_gpu = true;
  bool released = false;             ///< nodes returned to the pool

  bool running_at(common::TimePoint t) const { return t >= start_time && t < end_time; }
  double phase_at(common::TimePoint t) const {
    const auto span = static_cast<double>(end_time - start_time);
    return span <= 0 ? 0.0 : static_cast<double>(t - start_time) / span;
  }
};

struct SchedulerConfig {
  double arrival_rate_per_hour = 40.0;
  double mean_duration_hours = 1.5;
  double full_system_job_prob = 0.004;  ///< occasional HPL-like runs
  std::size_t max_queue = 512;
  /// Zipf skew of archetype popularity (few shapes dominate, Fig 10).
  double archetype_skew = 1.2;
  std::size_t num_projects = 24;
  std::size_t num_users = 120;
};

/// Event-driven batch scheduler over a fixed node pool. Deterministic
/// given the seed; step() advances facility time and returns scheduler
/// events (job start/end) that occurred in the step.
class JobScheduler {
 public:
  enum class EventKind : std::uint8_t { kSubmit = 0, kStart = 1, kEnd = 2 };
  struct Event {
    EventKind kind;
    common::TimePoint time;
    std::int64_t job_id;
  };

  JobScheduler(std::size_t total_nodes, SchedulerConfig config, common::Rng rng);

  /// Advance from current time to `t`, generating arrivals, starts, ends.
  std::vector<Event> advance_to(common::TimePoint t);

  /// The job (if any) occupying `node` at time `t`.
  const Job* job_on_node(std::uint32_t node, common::TimePoint t) const;

  const std::vector<Job>& jobs() const { return jobs_; }
  const Job* find_job(std::int64_t job_id) const;
  std::size_t running_count(common::TimePoint t) const;
  std::size_t busy_nodes(common::TimePoint t) const;
  std::size_t total_nodes() const { return node_owner_.size(); }

  /// Job allocation log as a Table: (job_id, project, user, archetype,
  /// submit/start/end, num_nodes, uses_gpu) — the RM dataset of Fig 3.
  sql::Table allocation_log() const;

  /// Per-(job, node) allocation rows for joining with node telemetry.
  sql::Table node_allocation_log() const;

 private:
  void generate_arrivals_until(common::TimePoint t);
  void try_start_queued(common::TimePoint now);
  void release_finished(common::TimePoint now, std::vector<Event>& events);

  SchedulerConfig config_;
  common::Rng rng_;
  common::TimePoint now_ = 0;
  common::TimePoint next_arrival_ = 0;
  std::vector<Job> jobs_;
  std::vector<std::size_t> queue_;          ///< indexes into jobs_
  std::vector<std::int64_t> node_owner_;    ///< job_id or -1 per node
  std::vector<std::uint32_t> free_nodes_;
  std::int64_t next_job_id_ = 1;
  std::vector<Event> pending_events_;
};

}  // namespace oda::telemetry
