#include "telemetry/failures.hpp"

#include <algorithm>

namespace oda::telemetry {

using common::Rng;
using common::TimePoint;

FailureInjector::FailureInjector(std::size_t total_nodes, std::size_t gpus_per_node,
                                 FailureConfig config, Rng rng)
    : total_nodes_(total_nodes), gpus_per_node_(std::max<std::size_t>(1, gpus_per_node)),
      config_(config), rng_(rng) {}

void FailureInjector::schedule_until(TimePoint t) {
  if (config_.system_mtbf_hours <= 0.0) {
    scheduled_until_ = t;
    return;
  }
  const double rate_per_s = 1.0 / (config_.system_mtbf_hours * 3600.0);
  while (scheduled_until_ < t) {
    scheduled_until_ += common::from_seconds(rng_.exponential(rate_per_s));
    if (scheduled_until_ >= t && failures_.empty() && scheduled_until_ > 100 * common::kDay) {
      break;  // pathological rate: avoid unbounded scheduling
    }
    FailureEvent f;
    f.node_id = static_cast<std::uint32_t>(rng_.uniform_index(total_nodes_));
    f.gpu_index = static_cast<std::uint8_t>(rng_.uniform_index(gpus_per_node_));
    f.failure = scheduled_until_;
    f.onset = f.failure - config_.precursor_lead;
    f.recovered = f.failure + config_.drain_duration;
    failures_.push_back(f);
  }
  scheduled_until_ = std::max(scheduled_until_, t);
}

double FailureInjector::temp_bias(std::uint32_t node, std::uint8_t gpu, TimePoint t) const {
  double bias = 0.0;
  for (const auto& f : failures_) {
    if (f.node_id != node || f.gpu_index != gpu) continue;
    if (t >= f.onset && t < f.failure) {
      const double frac = static_cast<double>(t - f.onset) /
                          static_cast<double>(std::max<common::Duration>(1, f.failure - f.onset));
      bias += config_.precursor_temp_rise_c * frac;
    }
  }
  return bias;
}

bool FailureInjector::gpu_down(std::uint32_t node, std::uint8_t gpu, TimePoint t) const {
  for (const auto& f : failures_) {
    if (f.node_id == node && f.gpu_index == gpu && t >= f.failure && t < f.recovered) return true;
  }
  return false;
}

std::vector<LogEvent> FailureInjector::events_in(TimePoint from, TimePoint to) const {
  std::vector<LogEvent> out;
  for (const auto& f : failures_) {
    if (f.failure <= from || f.failure > to) continue;
    for (std::size_t i = 0; i < config_.xid_burst_events; ++i) {
      LogEvent ev;
      ev.timestamp = f.failure + static_cast<common::TimePoint>(i) * 100 * common::kMillisecond;
      ev.node_id = f.node_id;
      ev.severity = i == 0 ? Severity::kCritical : Severity::kError;
      ev.subsystem = "gpu-xid";
      ev.message = i == 0 ? "xid 48: double-bit ecc error" : "xid 63: page retirement pending";
      out.push_back(std::move(ev));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const LogEvent& a, const LogEvent& b) { return a.timestamp < b.timestamp; });
  return out;
}

}  // namespace oda::telemetry
