#include "telemetry/events.hpp"

#include <algorithm>
#include <array>

namespace oda::telemetry {

using common::Rng;
using common::TimePoint;

namespace {
constexpr std::array<const char*, 6> kSubsystems = {"kernel", "lustre", "slingshot",
                                                    "gpu-xid", "slurm", "bmc"};
constexpr std::array<const char*, 4> kInfoMessages = {
    "health check ok", "lnet reconnect complete", "job cgroup created", "firmware heartbeat"};
constexpr std::array<const char*, 4> kWarnMessages = {
    "link flap detected", "ost response slow", "correctable memory error", "fan speed deviation"};
constexpr std::array<const char*, 4> kErrorMessages = {
    "gpu xid 63: page retirement", "lustre client evicted", "uncorrectable ecc error",
    "node health check failed"};
}  // namespace

EventGenerator::EventGenerator(std::size_t total_nodes, EventGenConfig config, Rng rng)
    : total_nodes_(total_nodes), config_(config), rng_(rng) {}

LogEvent EventGenerator::make_event(TimePoint t, Severity sev) {
  LogEvent ev;
  ev.timestamp = t;
  ev.node_id = static_cast<std::uint32_t>(rng_.uniform_index(total_nodes_));
  ev.severity = sev;
  ev.subsystem = kSubsystems[rng_.uniform_index(kSubsystems.size())];
  switch (sev) {
    case Severity::kInfo: ev.message = kInfoMessages[rng_.uniform_index(kInfoMessages.size())]; break;
    case Severity::kWarning: ev.message = kWarnMessages[rng_.uniform_index(kWarnMessages.size())]; break;
    default: ev.message = kErrorMessages[rng_.uniform_index(kErrorMessages.size())]; break;
  }
  return ev;
}

std::vector<LogEvent> EventGenerator::generate(TimePoint from, TimePoint to) {
  std::vector<LogEvent> out;
  const double hours = common::to_seconds(to - from) / 3600.0;
  if (hours <= 0) return out;
  const double nodes = static_cast<double>(total_nodes_);

  struct SevRate {
    Severity sev;
    double rate;
  };
  const SevRate rates[] = {
      {Severity::kInfo, config_.info_rate_per_node_hour * nodes},
      {Severity::kWarning, config_.warning_rate_per_node_hour * nodes},
      {Severity::kError, config_.error_rate_per_node_hour * nodes},
  };
  for (const auto& [sev, rate] : rates) {
    const double expected = rate * hours;
    // Poisson via exponential gaps on the interval.
    double t = common::to_seconds(from);
    const double end = common::to_seconds(to);
    if (expected <= 0) continue;
    const double per_sec = rate / 3600.0;
    for (;;) {
      t += rng_.exponential(per_sec);
      if (t > end) break;
      out.push_back(make_event(common::from_seconds(t), sev));
    }
  }

  // Facility-wide bursts: one sick node floods multiple subsystems.
  double bt = common::to_seconds(from);
  const double bend = common::to_seconds(to);
  for (;;) {
    bt += rng_.exponential(config_.burst_rate_per_hour / 3600.0);
    if (bt > bend) break;
    const auto node = static_cast<std::uint32_t>(rng_.uniform_index(total_nodes_));
    const std::size_t n = config_.burst_events_min +
                          rng_.uniform_index(config_.burst_events_max - config_.burst_events_min + 1);
    for (std::size_t i = 0; i < n; ++i) {
      LogEvent ev = make_event(common::from_seconds(bt + rng_.uniform(0.0, 30.0)),
                               rng_.bernoulli(0.3) ? Severity::kCritical : Severity::kError);
      ev.node_id = node;  // burst is node-correlated
      out.push_back(std::move(ev));
    }
  }

  std::sort(out.begin(), out.end(),
            [](const LogEvent& a, const LogEvent& b) { return a.timestamp < b.timestamp; });
  return out;
}

}  // namespace oda::telemetry
