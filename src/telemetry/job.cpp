#include "telemetry/job.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace oda::telemetry {

using common::Duration;
using common::Rng;
using common::TimePoint;

const char* archetype_name(JobArchetype a) {
  switch (a) {
    case JobArchetype::kConstant: return "constant";
    case JobArchetype::kRamp: return "ramp";
    case JobArchetype::kPeriodic: return "periodic";
    case JobArchetype::kPhased: return "phased";
    case JobArchetype::kSpiky: return "spiky";
    case JobArchetype::kDecay: return "decay";
  }
  return "?";
}

double archetype_utilization(JobArchetype a, double x, Rng& jitter) {
  x = std::clamp(x, 0.0, 1.0);
  const double noise = 0.03 * jitter.normal();
  double u = 0.0;
  switch (a) {
    case JobArchetype::kConstant:
      u = 0.92;
      break;
    case JobArchetype::kRamp:
      // Staged start-up: 3 steps, then full power (HPL-like).
      u = x < 0.05 ? 0.3 : x < 0.10 ? 0.6 : x < 0.15 ? 0.8 : 0.98;
      break;
    case JobArchetype::kPeriodic:
      u = 0.65 + 0.3 * std::sin(2.0 * std::numbers::pi * 12.0 * x);
      break;
    case JobArchetype::kPhased: {
      // 6 compute phases separated by I/O checkpoints at low power.
      const double p = std::fmod(x * 6.0, 1.0);
      u = p < 0.8 ? 0.9 : 0.25;
      break;
    }
    case JobArchetype::kSpiky: {
      // Deterministic pseudo-random bursts keyed off the phase so that a
      // job's profile is stable across re-evaluation.
      const double h = std::sin(x * 997.0) * 43758.5453;
      const double frac = h - std::floor(h);
      u = frac > 0.6 ? 0.95 : 0.35;
      break;
    }
    case JobArchetype::kDecay:
      u = 0.95 * std::exp(-2.2 * x) + 0.25;
      break;
  }
  return std::clamp(u + noise, 0.0, 1.0);
}

JobScheduler::JobScheduler(std::size_t total_nodes, SchedulerConfig config, Rng rng)
    : config_(config), rng_(rng), node_owner_(total_nodes, -1) {
  free_nodes_.reserve(total_nodes);
  for (std::size_t i = total_nodes; i > 0; --i) free_nodes_.push_back(static_cast<std::uint32_t>(i - 1));
  next_arrival_ = config_.arrival_rate_per_hour <= 0.0
                      ? INT64_MAX
                      : static_cast<TimePoint>(rng_.exponential(config_.arrival_rate_per_hour / 3600.0) *
                                               static_cast<double>(common::kSecond));
}

void JobScheduler::generate_arrivals_until(TimePoint t) {
  while (next_arrival_ <= t) {
    if (queue_.size() >= config_.max_queue) {
      // Saturated queue: drop arrivals (backpressure) but keep the clock moving.
      next_arrival_ += static_cast<TimePoint>(rng_.exponential(config_.arrival_rate_per_hour / 3600.0) *
                                              static_cast<double>(common::kSecond));
      continue;
    }
    Job j;
    j.job_id = next_job_id_++;
    j.submit_time = next_arrival_;
    j.project = "PRJ" + std::to_string(rng_.zipf(config_.num_projects, 1.1));
    j.user = "user" + std::to_string(rng_.zipf(config_.num_users, 1.05));
    j.archetype = static_cast<JobArchetype>(rng_.zipf(kNumArchetypes, config_.archetype_skew));
    j.base_util = std::clamp(rng_.normal(0.95, 0.08), 0.5, 1.0);
    j.uses_gpu = rng_.bernoulli(0.85);

    const std::size_t pool = node_owner_.size();
    if (rng_.bernoulli(config_.full_system_job_prob)) {
      j.num_nodes = pool;  // full-system HPL-like run
      j.archetype = JobArchetype::kRamp;
    } else {
      // Heavy-tailed node counts, capped at the pool size.
      const double raw = rng_.pareto(1.0, 0.9);
      j.num_nodes = std::min<std::size_t>(pool, std::max<std::size_t>(1, static_cast<std::size_t>(raw)));
    }
    const double hours = rng_.lognormal(std::log(config_.mean_duration_hours), 0.9);
    const Duration dur = std::max<Duration>(2 * common::kMinute, common::from_seconds(hours * 3600.0));
    j.end_time = 0;
    j.start_time = 0;
    // Stash planned duration in end_time until started (encoded as negative).
    j.end_time = -dur;
    jobs_.push_back(std::move(j));
    queue_.push_back(jobs_.size() - 1);
    pending_events_.push_back(Event{EventKind::kSubmit, next_arrival_, jobs_.back().job_id});

    next_arrival_ += static_cast<TimePoint>(rng_.exponential(config_.arrival_rate_per_hour / 3600.0) *
                                            static_cast<double>(common::kSecond));
  }
}

void JobScheduler::try_start_queued(TimePoint now) {
  // FIFO with backfill: scan the queue, start anything that fits.
  for (auto it = queue_.begin(); it != queue_.end();) {
    Job& j = jobs_[*it];
    if (j.num_nodes <= free_nodes_.size()) {
      j.start_time = now;
      const Duration planned = -j.end_time;
      j.end_time = now + planned;
      j.nodes.assign(free_nodes_.end() - static_cast<std::ptrdiff_t>(j.num_nodes), free_nodes_.end());
      free_nodes_.resize(free_nodes_.size() - j.num_nodes);
      for (std::uint32_t n : j.nodes) node_owner_[n] = j.job_id;
      pending_events_.push_back(Event{EventKind::kStart, now, j.job_id});
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void JobScheduler::release_finished(TimePoint now, std::vector<Event>& events) {
  for (auto& j : jobs_) {
    if (j.start_time == 0 || j.end_time <= 0) continue;  // queued
    if (j.end_time <= now && !j.released) {
      for (std::uint32_t n : j.nodes) {
        node_owner_[n] = -1;
        free_nodes_.push_back(n);
      }
      events.push_back(Event{EventKind::kEnd, j.end_time, j.job_id});
      j.released = true;
    }
  }
}

std::vector<JobScheduler::Event> JobScheduler::advance_to(TimePoint t) {
  std::vector<Event> events;
  generate_arrivals_until(t);
  release_finished(t, events);
  try_start_queued(t);
  now_ = t;
  events.insert(events.end(), pending_events_.begin(), pending_events_.end());
  pending_events_.clear();
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) { return a.time < b.time; });
  return events;
}

const Job* JobScheduler::job_on_node(std::uint32_t node, TimePoint t) const {
  if (node >= node_owner_.size()) return nullptr;
  const std::int64_t id = node_owner_[node];
  if (id < 0) return nullptr;
  const Job* j = find_job(id);
  return j && j->running_at(t) ? j : nullptr;
}

const Job* JobScheduler::find_job(std::int64_t job_id) const {
  // job ids are dense and ascending: jobs_[id-1].
  const auto idx = static_cast<std::size_t>(job_id - 1);
  if (idx >= jobs_.size() || jobs_[idx].job_id != job_id) return nullptr;
  return &jobs_[idx];
}

std::size_t JobScheduler::running_count(TimePoint t) const {
  std::size_t n = 0;
  for (const auto& j : jobs_) {
    if (j.start_time > 0 && j.end_time > 0 && j.running_at(t)) ++n;
  }
  return n;
}

std::size_t JobScheduler::busy_nodes(TimePoint t) const {
  std::size_t n = 0;
  for (const auto& j : jobs_) {
    if (j.start_time > 0 && j.end_time > 0 && j.running_at(t)) n += j.num_nodes;
  }
  return n;
}

sql::Table JobScheduler::allocation_log() const {
  using sql::DataType;
  sql::Table t{sql::Schema{{"job_id", DataType::kInt64},
                           {"project", DataType::kString},
                           {"user", DataType::kString},
                           {"archetype", DataType::kString},
                           {"submit_time", DataType::kInt64},
                           {"start_time", DataType::kInt64},
                           {"end_time", DataType::kInt64},
                           {"num_nodes", DataType::kInt64},
                           {"uses_gpu", DataType::kBool}}};
  for (const auto& j : jobs_) {
    const bool started = j.start_time > 0;
    t.append_row({sql::Value(j.job_id), sql::Value(j.project), sql::Value(j.user),
                  sql::Value(archetype_name(j.archetype)), sql::Value(j.submit_time),
                  started ? sql::Value(j.start_time) : sql::Value::null(),
                  started ? sql::Value(j.end_time) : sql::Value::null(),
                  sql::Value(static_cast<std::int64_t>(j.num_nodes)), sql::Value(j.uses_gpu)});
  }
  return t;
}

sql::Table JobScheduler::node_allocation_log() const {
  using sql::DataType;
  sql::Table t{sql::Schema{{"job_id", DataType::kInt64},
                           {"node_id", DataType::kInt64},
                           {"start_time", DataType::kInt64},
                           {"end_time", DataType::kInt64}}};
  for (const auto& j : jobs_) {
    if (j.start_time == 0) continue;
    for (std::uint32_t n : j.nodes) {
      t.append_row({sql::Value(j.job_id), sql::Value(static_cast<std::int64_t>(n)),
                    sql::Value(j.start_time), sql::Value(j.end_time)});
    }
  }
  return t;
}

}  // namespace oda::telemetry
