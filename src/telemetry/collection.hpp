// Data collection paths (Sec IV): the trade between in-band collection
// (rich and fast, but "too invasive to the system") and out-of-band
// collection over the management network / BMC ("delivery of sensor
// data is guaranteed outside of the system" at lower rates). The paper's
// lesson: plan the path per stream against its downstream use.
#pragma once

#include <string>
#include <vector>

#include "common/time.hpp"
#include "telemetry/spec.hpp"

namespace oda::telemetry {

enum class CollectionPath : std::uint8_t {
  kInBand = 0,        ///< agent on the compute node (perf counters, /proc)
  kOutOfBand = 1,     ///< BMC / management network (power, temps)
  kPerJobInstr = 2,   ///< linked into the application (the Darshan path)
};
const char* collection_path_name(CollectionPath p);

/// What a collection path can deliver for a sensor class, and what it
/// costs the machine.
struct CollectionProperties {
  common::Duration min_period = common::kSecond;  ///< fastest sustainable cadence
  double loss_rate = 0.0;            ///< delivery loss under load
  double node_overhead_fraction = 0.0;  ///< compute stolen from jobs
  bool survives_node_crash = false;  ///< keeps reporting when the OS dies
  bool sees_app_context = false;     ///< can attribute to jobs/ranks directly
};

/// Properties of a path at a given per-node sensor count (overhead and
/// loss scale with how much is collected).
CollectionProperties collection_properties(CollectionPath path, std::size_t sensors_per_node);

/// Facility-level cost of a collection plan: total node-overhead
/// (node-hours/day lost to monitoring) and expected delivered samples.
struct CollectionPlanCost {
  double node_hours_lost_per_day = 0.0;
  double delivered_samples_per_day = 0.0;
  double delivered_fraction = 0.0;  ///< after loss
};
CollectionPlanCost plan_cost(const SystemSpec& spec, CollectionPath path,
                             common::Duration period);

}  // namespace oda::telemetry
