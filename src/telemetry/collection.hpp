// Data collection paths (Sec IV): the trade between in-band collection
// (rich and fast, but "too invasive to the system") and out-of-band
// collection over the management network / BMC ("delivery of sensor
// data is guaranteed outside of the system" at lower rates). The paper's
// lesson: plan the path per stream against its downstream use.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/faults.hpp"
#include "common/time.hpp"
#include "stream/broker.hpp"
#include "telemetry/spec.hpp"

namespace oda::telemetry {

enum class CollectionPath : std::uint8_t {
  kInBand = 0,        ///< agent on the compute node (perf counters, /proc)
  kOutOfBand = 1,     ///< BMC / management network (power, temps)
  kPerJobInstr = 2,   ///< linked into the application (the Darshan path)
};
const char* collection_path_name(CollectionPath p);

/// What a collection path can deliver for a sensor class, and what it
/// costs the machine.
struct CollectionProperties {
  common::Duration min_period = common::kSecond;  ///< fastest sustainable cadence
  double loss_rate = 0.0;            ///< delivery loss under load
  double node_overhead_fraction = 0.0;  ///< compute stolen from jobs
  bool survives_node_crash = false;  ///< keeps reporting when the OS dies
  bool sees_app_context = false;     ///< can attribute to jobs/ranks directly
};

/// Properties of a path at a given per-node sensor count (overhead and
/// loss scale with how much is collected).
CollectionProperties collection_properties(CollectionPath path, std::size_t sensors_per_node);

/// Facility-level cost of a collection plan: total node-overhead
/// (node-hours/day lost to monitoring) and expected delivered samples.
struct CollectionPlanCost {
  double node_hours_lost_per_day = 0.0;
  double delivered_samples_per_day = 0.0;
  double delivered_fraction = 0.0;  ///< after loss
};
CollectionPlanCost plan_cost(const SystemSpec& spec, CollectionPath path,
                             common::Duration period);

/// Delivery accounting for a CollectionChannel. Dropped records are the
/// paper's "collection gaps": the push path gave up after its retry
/// budget, and the sample is lost — the facility keeps running.
struct ChannelStats {
  std::uint64_t delivered_records = 0;
  std::uint64_t delivered_bytes = 0;
  std::uint64_t dropped_records = 0;
  std::uint64_t dropped_bytes = 0;
  std::uint64_t retries = 0;           ///< produce attempts beyond the first
  common::Duration backoff_total = 0;  ///< virtual backoff accumulated
};

/// The retrying conduit between collectors and the broker — the push
/// path of Sec IV made concrete. Every delivery passes the
/// "telemetry.collect" fault seam and the broker's own "stream.produce"
/// seam; transient faults are retried with backoff, and exhaustion (or a
/// hard fault) degrades to a counted drop rather than an exception, so a
/// broker outage can never take the collector down with it.
class CollectionChannel {
 public:
  explicit CollectionChannel(stream::Broker& broker, chaos::RetryPolicy policy = {},
                             std::uint64_t seed = 0xc011ec70ull)
      : broker_(broker), retrier_(policy, seed) {}

  /// Deliver one record; returns false when the record was dropped.
  bool deliver(const std::string& topic, stream::Record rec);

  void set_retry_policy(const chaos::RetryPolicy& p) { retrier_.set_policy(p); }
  const ChannelStats& stats() const { return stats_; }

 private:
  stream::Producer& producer_for(const std::string& topic);

  stream::Broker& broker_;
  chaos::Retrier retrier_;
  ChannelStats stats_;
  // Cached-handle producers: the name→topic lookup (broker mutex + map
  // walk) happens once per topic per channel, not once per sample. Topic
  // handles are stable for the broker's lifetime, so cached entries never
  // go stale.
  std::map<std::string, stream::Producer> producers_;
};

}  // namespace oda::telemetry
