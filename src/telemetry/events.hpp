// Syslog & event stream generator: background log chatter plus
// correlated error bursts (a failing node emits a storm across
// subsystems) — the signal Copacetic and the UA dashboards consume.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "telemetry/codec.hpp"

namespace oda::telemetry {

struct EventGenConfig {
  double info_rate_per_node_hour = 6.0;
  double warning_rate_per_node_hour = 0.5;
  double error_rate_per_node_hour = 0.05;
  double burst_rate_per_hour = 0.8;      ///< facility-wide error bursts
  std::size_t burst_events_min = 20;
  std::size_t burst_events_max = 120;
};

class EventGenerator {
 public:
  EventGenerator(std::size_t total_nodes, EventGenConfig config, common::Rng rng);

  /// Generate all events in (from, to].
  std::vector<LogEvent> generate(common::TimePoint from, common::TimePoint to);

 private:
  LogEvent make_event(common::TimePoint t, Severity sev);

  std::size_t total_nodes_;
  EventGenConfig config_;
  common::Rng rng_;
};

}  // namespace oda::telemetry
