// Per-job I/O instrumentation (the Darshan role, Sec IV-B) and the
// parallel-filesystem server telemetry ("Storage system" row of Fig 3).
//
// Jobs generate I/O according to their archetype — phased workloads
// checkpoint heavily, analytics workloads read-dominate — and that load
// lands on the filesystem's OSTs through striping, producing the
// server-side counters operators actually watch.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "sql/table.hpp"
#include "stream/record.hpp"
#include "stream/view.hpp"
#include "telemetry/job.hpp"

namespace oda::telemetry {

/// Darshan-style per-job I/O counters accumulated over an interval.
struct IoCounters {
  std::int64_t job_id = 0;
  common::TimePoint interval_start = 0;
  common::Duration interval = 0;
  double bytes_read = 0.0;
  double bytes_written = 0.0;
  std::uint32_t opens = 0;
  std::uint32_t metadata_ops = 0;
  std::uint8_t checkpoint_phase = 0;  ///< 1 while the job is checkpointing
};

/// Per-job I/O behaviour per archetype, in bytes/s per allocated node.
struct IoProfile {
  double read_rate = 0.0;
  double write_rate = 0.0;
  double open_rate = 0.0;      ///< opens per node-minute
  double checkpoint_multiplier = 1.0;  ///< write burst factor during checkpoints
};
IoProfile io_profile_for(JobArchetype a);

struct LustreConfig {
  std::size_t num_osts = 16;
  double ost_bandwidth_bytes_s = 5e9;  ///< per OST
  double background_load = 0.05;       ///< fraction of bw consumed by purges etc.
};

/// One OST's state over an interval: load and derived latency.
struct OstSample {
  common::TimePoint time = 0;
  std::uint32_t ost = 0;
  double bytes_s = 0.0;
  double utilization = 0.0;  ///< fraction of bandwidth
  double latency_ms = 0.0;   ///< queueing-delay model
};

/// Generates per-job Darshan counters and per-OST server telemetry for
/// each sampling interval, given the jobs running on the system.
class IoTelemetryModel {
 public:
  IoTelemetryModel(LustreConfig config, common::Rng rng);

  /// Sample the interval [t, t+dt): per-running-job counters and the
  /// resulting OST load (jobs stripe across OSTs by job id).
  void sample(common::TimePoint t, common::Duration dt, const JobScheduler& sched,
              std::vector<IoCounters>& jobs_out, std::vector<OstSample>& osts_out);

  const LustreConfig& config() const { return config_; }

 private:
  LustreConfig config_;
  common::Rng rng_;
};

// --- wire codecs -------------------------------------------------------

stream::Record encode_io_counters(const IoCounters& c);
IoCounters decode_io_counters(const stream::Record& r);
IoCounters decode_io_counters(std::string_view payload);
/// Schema: (time, job_id, bytes_read, bytes_written, opens, metadata_ops, checkpointing).
sql::Schema io_counters_schema();
sql::Table io_counters_to_table(std::span<const stream::RecordView> records);

stream::Record encode_ost_sample(const OstSample& s);
OstSample decode_ost_sample(const stream::Record& r);
OstSample decode_ost_sample(std::string_view payload);
/// Schema: (time, ost, bytes_s, utilization, latency_ms).
sql::Schema ost_schema();
sql::Table ost_samples_to_table(std::span<const stream::RecordView> records);

}  // namespace oda::telemetry
