#include "telemetry/codec.hpp"

#include "common/bytes.hpp"

namespace oda::telemetry {

using common::ByteReader;
using common::ByteWriter;
using sql::DataType;
using sql::Schema;
using sql::Table;
using sql::Value;

stream::Record encode_packet(const TelemetryPacket& pkt) {
  ByteWriter w;
  w.i64(pkt.timestamp);
  w.u32(pkt.node_id);
  w.varint(pkt.readings.size());
  for (const auto& r : pkt.readings) {
    w.u16(r.sensor);
    w.f64(r.value);
  }
  stream::Record rec;
  rec.timestamp = pkt.timestamp;
  rec.key = "n" + std::to_string(pkt.node_id);
  auto bytes = w.take();
  rec.payload.assign(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  return rec;
}

void encode_packet_into(const TelemetryPacket& pkt, stream::BatchBuilder& staged) {
  ByteWriter& w = staged.begin_record(pkt.timestamp);
  w.raw("n", 1);
  w.text_u64(pkt.node_id);
  staged.begin_payload();
  w.i64(pkt.timestamp);
  w.u32(pkt.node_id);
  w.varint(pkt.readings.size());
  for (const auto& r : pkt.readings) {
    w.u16(r.sensor);
    w.f64(r.value);
  }
  staged.end_record();
}

TelemetryPacket decode_packet(const stream::Record& r) {
  return decode_packet(std::string_view(r.payload));
}

TelemetryPacket decode_packet(std::string_view payload) {
  ByteReader br(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(payload.data()),
                                              payload.size()));
  TelemetryPacket pkt;
  pkt.timestamp = br.i64();
  pkt.node_id = br.u32();
  const std::uint64_t n = br.varint();
  pkt.readings.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    SensorReading sr;
    sr.sensor = br.u16();
    sr.value = br.f64();
    pkt.readings.push_back(sr);
  }
  return pkt;
}

Schema bronze_schema() {
  return Schema{{"time", DataType::kInt64},
                {"node_id", DataType::kInt64},
                {"sensor", DataType::kString},
                {"value", DataType::kFloat64}};
}

void append_packet_rows(const TelemetryPacket& pkt, Table& bronze) {
  for (const auto& r : pkt.readings) {
    bronze.append_row({Value(pkt.timestamp), Value(static_cast<std::int64_t>(pkt.node_id)),
                       Value(SensorId::decode(r.sensor).label()), Value(r.value)});
  }
}

Table packets_to_bronze(std::span<const stream::RecordView> records) {
  Table bronze(bronze_schema());
  bronze.reserve(records.size() * 20);
  for (const auto& v : records) append_packet_rows(decode_packet(v.payload), bronze);
  return bronze;
}

stream::Record encode_job_event(const JobScheduler::Event& ev, const Job& job) {
  ByteWriter w;
  w.i64(ev.time);
  w.u8(static_cast<std::uint8_t>(ev.kind));
  w.i64(job.job_id);
  w.str(job.project);
  w.str(job.user);
  w.u8(static_cast<std::uint8_t>(job.archetype));
  w.varint(job.num_nodes);
  w.u8(job.uses_gpu ? 1 : 0);
  stream::Record rec;
  rec.timestamp = ev.time;
  rec.key = "j" + std::to_string(job.job_id);
  auto bytes = w.take();
  rec.payload.assign(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  return rec;
}

void encode_job_event_into(const JobScheduler::Event& ev, const Job& job,
                           stream::BatchBuilder& staged) {
  ByteWriter& w = staged.begin_record(ev.time);
  w.raw("j", 1);
  w.text_i64(job.job_id);
  staged.begin_payload();
  w.i64(ev.time);
  w.u8(static_cast<std::uint8_t>(ev.kind));
  w.i64(job.job_id);
  w.str(job.project);
  w.str(job.user);
  w.u8(static_cast<std::uint8_t>(job.archetype));
  w.varint(job.num_nodes);
  w.u8(job.uses_gpu ? 1 : 0);
  staged.end_record();
}

Schema job_event_schema() {
  return Schema{{"time", DataType::kInt64},    {"event", DataType::kString},
                {"job_id", DataType::kInt64},  {"project", DataType::kString},
                {"user", DataType::kString},   {"archetype", DataType::kString},
                {"num_nodes", DataType::kInt64}, {"uses_gpu", DataType::kBool}};
}

Table job_events_to_table(std::span<const stream::RecordView> records) {
  static const char* kEventNames[] = {"submit", "start", "end"};
  Table t(job_event_schema());
  t.reserve(records.size());
  for (const auto& v : records) {
    ByteReader br(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(v.payload.data()), v.payload.size()));
    const std::int64_t time = br.i64();
    const std::uint8_t kind = br.u8();
    const std::int64_t job_id = br.i64();
    std::string project = br.str();
    std::string user = br.str();
    const auto archetype = static_cast<JobArchetype>(br.u8());
    const std::int64_t num_nodes = static_cast<std::int64_t>(br.varint());
    const bool uses_gpu = br.u8() != 0;
    t.append_row({Value(time), Value(kEventNames[kind]), Value(job_id), Value(std::move(project)),
                  Value(std::move(user)), Value(archetype_name(archetype)), Value(num_nodes),
                  Value(uses_gpu)});
  }
  return t;
}

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
    case Severity::kCritical: return "critical";
  }
  return "?";
}

stream::Record encode_log_event(const LogEvent& ev) {
  ByteWriter w;
  w.i64(ev.timestamp);
  w.u32(ev.node_id);
  w.u8(static_cast<std::uint8_t>(ev.severity));
  w.str(ev.subsystem);
  w.str(ev.message);
  stream::Record rec;
  rec.timestamp = ev.timestamp;
  rec.key = "n" + std::to_string(ev.node_id);
  auto bytes = w.take();
  rec.payload.assign(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  return rec;
}

void encode_log_event_into(const LogEvent& ev, stream::BatchBuilder& staged) {
  ByteWriter& w = staged.begin_record(ev.timestamp);
  w.raw("n", 1);
  w.text_u64(ev.node_id);
  staged.begin_payload();
  w.i64(ev.timestamp);
  w.u32(ev.node_id);
  w.u8(static_cast<std::uint8_t>(ev.severity));
  w.str(ev.subsystem);
  w.str(ev.message);
  staged.end_record();
}

LogEvent decode_log_event(const stream::Record& r) {
  return decode_log_event(std::string_view(r.payload));
}

LogEvent decode_log_event(std::string_view payload) {
  ByteReader br(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(payload.data()),
                                              payload.size()));
  LogEvent ev;
  ev.timestamp = br.i64();
  ev.node_id = br.u32();
  ev.severity = static_cast<Severity>(br.u8());
  ev.subsystem = br.str();
  ev.message = br.str();
  return ev;
}

Schema log_event_schema() {
  return Schema{{"time", DataType::kInt64},
                {"node_id", DataType::kInt64},
                {"severity", DataType::kString},
                {"subsystem", DataType::kString},
                {"message", DataType::kString}};
}

Table log_events_to_table(std::span<const stream::RecordView> records) {
  Table t(log_event_schema());
  t.reserve(records.size());
  for (const auto& v : records) {
    LogEvent ev = decode_log_event(v.payload);
    t.append_row({Value(ev.timestamp), Value(static_cast<std::int64_t>(ev.node_id)),
                  Value(severity_name(ev.severity)), Value(std::move(ev.subsystem)),
                  Value(std::move(ev.message))});
  }
  return t;
}

}  // namespace oda::telemetry
