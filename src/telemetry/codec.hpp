// Wire codec between the facility simulator and the broker, and the
// Bronze decode on the pipeline side: packets → long-format rows
// ("each row encapsulates an individual sensor observation", Sec V-A).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "sql/table.hpp"
#include "stream/record.hpp"
#include "stream/staging.hpp"
#include "stream/view.hpp"
#include "telemetry/sensors.hpp"

namespace oda::telemetry {

/// Serialize a packet into a broker Record (key = node id for stable
/// partitioning; payload = compact binary).
stream::Record encode_packet(const TelemetryPacket& pkt);
/// Zero-copy variant: serialize straight into a staging buffer — key and
/// payload bytes are byte-identical to encode_packet's, but no Record (or
/// any intermediate buffer) is materialized.
void encode_packet_into(const TelemetryPacket& pkt, stream::BatchBuilder& staged);
TelemetryPacket decode_packet(const stream::Record& r);
/// Payload-level decode for the zero-copy path (no owned Record needed).
TelemetryPacket decode_packet(std::string_view payload);

/// Schema of the Bronze long-format table:
/// (time:int64, node_id:int64, sensor:string, value:float64).
sql::Schema bronze_schema();

/// Decode a batch of broker record views into one Bronze long table
/// (reads payload bytes in place; nothing is copied but the rows).
sql::Table packets_to_bronze(std::span<const stream::RecordView> records);

/// Append a single packet's readings to a Bronze table (same schema).
void append_packet_rows(const TelemetryPacket& pkt, sql::Table& bronze);

// --- scheduler events -----------------------------------------------------

/// Serialize a scheduler event referencing the job metadata.
stream::Record encode_job_event(const JobScheduler::Event& ev, const Job& job);
/// Zero-copy variant (byte-identical key/payload, no Record).
void encode_job_event_into(const JobScheduler::Event& ev, const Job& job,
                           stream::BatchBuilder& staged);

/// Schema: (time, event, job_id, project, user, archetype, num_nodes, uses_gpu).
sql::Schema job_event_schema();
sql::Table job_events_to_table(std::span<const stream::RecordView> records);

// --- syslog events ----------------------------------------------------------

enum class Severity : std::uint8_t { kInfo = 0, kWarning = 1, kError = 2, kCritical = 3 };
const char* severity_name(Severity s);

struct LogEvent {
  common::TimePoint timestamp = 0;
  std::uint32_t node_id = 0;
  Severity severity = Severity::kInfo;
  std::string subsystem;  ///< e.g. "lustre", "slingshot", "gpu-xid", "kernel"
  std::string message;
};

stream::Record encode_log_event(const LogEvent& ev);
/// Zero-copy variant (byte-identical key/payload, no Record).
void encode_log_event_into(const LogEvent& ev, stream::BatchBuilder& staged);
LogEvent decode_log_event(const stream::Record& r);
LogEvent decode_log_event(std::string_view payload);
sql::Schema log_event_schema();
sql::Table log_events_to_table(std::span<const stream::RecordView> records);

}  // namespace oda::telemetry
