// FacilitySimulator: the heavily instrumented HPC environment at the top
// of Fig 1. It owns a system spec, a job scheduler, the sensor models,
// the event generator and a facility (cooling) sensor set, and publishes
// every stream into the broker — the raw-ingest side of Fig 4-a.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "stream/broker.hpp"
#include "telemetry/collection.hpp"
#include "telemetry/events.hpp"
#include "telemetry/failures.hpp"
#include "telemetry/interconnect.hpp"
#include "telemetry/io_telemetry.hpp"
#include "telemetry/job.hpp"
#include "telemetry/sensors.hpp"
#include "telemetry/spec.hpp"

namespace oda::telemetry {

struct TopicNames {
  std::string power;      ///< per-node power/thermal packets
  std::string scheduler;  ///< job submit/start/end events
  std::string syslog;     ///< log events
  std::string facility;   ///< cooling-plant sensors
  std::string io;         ///< per-job Darshan-style I/O counters
  std::string storage;    ///< Lustre OST server telemetry
  std::string nic;        ///< per-node interconnect client counters
  std::string fabric;     ///< switch-level fabric telemetry

  static TopicNames for_system(const std::string& system_name);
};

struct SimulatorConfig {
  SchedulerConfig scheduler;
  EventGenConfig events;
  LustreConfig lustre;
  FabricConfig fabric;
  FailureConfig failures;
  common::Duration facility_period = 5 * common::kSecond;
  common::Duration io_period = 10 * common::kSecond;
  std::uint64_t seed = 42;
};

struct IngestStats {
  std::uint64_t power_records = 0;
  std::uint64_t power_bytes = 0;
  std::uint64_t scheduler_records = 0;
  std::uint64_t scheduler_bytes = 0;
  std::uint64_t syslog_records = 0;
  std::uint64_t syslog_bytes = 0;
  std::uint64_t facility_records = 0;
  std::uint64_t facility_bytes = 0;
  std::uint64_t io_records = 0;
  std::uint64_t io_bytes = 0;
  std::uint64_t storage_records = 0;
  std::uint64_t storage_bytes = 0;
  std::uint64_t nic_records = 0;
  std::uint64_t nic_bytes = 0;
  std::uint64_t fabric_records = 0;
  std::uint64_t fabric_bytes = 0;

  std::uint64_t total_bytes() const {
    return power_bytes + scheduler_bytes + syslog_bytes + facility_bytes + io_bytes +
           storage_bytes + nic_bytes + fabric_bytes;
  }
};

class FacilitySimulator {
 public:
  FacilitySimulator(SystemSpec spec, stream::Broker& broker, SimulatorConfig config = {});

  /// Advance facility time by `dt`, emitting all due samples/events into
  /// the broker. Safe to call with any dt; sampling stays aligned to the
  /// sensor period.
  void step(common::Duration dt);

  /// Run until `t` in sensor-period increments.
  void run_until(common::TimePoint t);

  common::TimePoint now() const { return now_; }
  const SystemSpec& spec() const { return spec_; }
  const TopicNames& topics() const { return topics_; }
  JobScheduler& scheduler() { return scheduler_; }
  const JobScheduler& scheduler() const { return scheduler_; }
  const FailureInjector& failures() const { return failures_; }
  /// Records *emitted* by the models. Under fault injection some may not
  /// land in the broker — channel().stats() has the delivered/dropped split.
  const IngestStats& ingest_stats() const { return stats_; }
  const CollectionChannel& channel() const { return channel_; }
  /// Retry budget for collector->broker delivery (see oda::chaos).
  void set_collection_retry(const chaos::RetryPolicy& p) { channel_.set_retry_policy(p); }
  double total_it_power_w() const { return sensors_.total_it_power_w(); }

  /// Generate a Bronze long table directly (batch path for experiments
  /// that bypass the broker, e.g. backfills and the compression bench).
  sql::Table sample_bronze(common::TimePoint t0, common::TimePoint t1);

 private:
  void emit_facility_sample(common::TimePoint t);

  SystemSpec spec_;
  stream::Broker& broker_;
  SimulatorConfig config_;
  TopicNames topics_;
  common::Rng rng_;
  JobScheduler scheduler_;
  NodeSensorModel sensors_;
  EventGenerator events_;
  IoTelemetryModel io_model_;
  InterconnectModel fabric_model_;
  FailureInjector failures_;
  CollectionChannel channel_;
  common::TimePoint now_ = 0;
  common::TimePoint last_sample_ = 0;
  common::TimePoint last_facility_ = 0;
  common::TimePoint last_io_ = 0;
  IngestStats stats_;
  double cooling_supply_temp_c_ = 21.0;
};

}  // namespace oda::telemetry
