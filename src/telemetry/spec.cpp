#include "telemetry/spec.hpp"

#include <algorithm>
#include <cmath>

namespace oda::telemetry {

const char* component_name(ComponentKind k) {
  switch (k) {
    case ComponentKind::kCpu: return "cpu";
    case ComponentKind::kGpu: return "gpu";
    case ComponentKind::kMemory: return "mem";
    case ComponentKind::kNic: return "nic";
    case ComponentKind::kNode: return "node";
  }
  return "?";
}

const char* sensor_name(SensorKind k) {
  switch (k) {
    case SensorKind::kPowerW: return "power_w";
    case SensorKind::kTempC: return "temp_c";
    case SensorKind::kUtil: return "util";
    case SensorKind::kEnergyJ: return "energy_j";
  }
  return "?";
}

std::size_t SystemSpec::sensors_per_node() const {
  std::size_t n = 2;  // node input power + inlet temp
  for (const auto& c : components) n += 2u * c.count;  // power + temp each
  return n;
}

std::size_t gpus_per_node(const SystemSpec& spec) {
  for (const auto& c : spec.components) {
    if (c.kind == ComponentKind::kGpu) return c.count;
  }
  return 0;
}

namespace {
std::size_t scaled(std::size_t n, double scale) {
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::llround(static_cast<double>(n) * scale)));
}
}  // namespace

SystemSpec mountain_spec(double scale) {
  SystemSpec s;
  s.name = "Mountain";
  s.cabinets = scaled(256, scale);
  s.nodes_per_cabinet = 18;
  s.components = {
      {ComponentKind::kCpu, 2, 60.0, 190.0, 32.0, 0.16},
      {ComponentKind::kGpu, 6, 35.0, 300.0, 30.0, 0.12},
      {ComponentKind::kMemory, 1, 25.0, 90.0, 28.0, 0.10},
      {ComponentKind::kNic, 1, 15.0, 25.0, 30.0, 0.20},
  };
  s.sensor_period = common::kSecond;
  s.sample_loss_rate = 0.002;
  s.node_overhead_w = 150.0;
  return s;
}

SystemSpec compass_spec(double scale) {
  SystemSpec s;
  s.name = "Compass";
  s.cabinets = scaled(74, scale);
  s.nodes_per_cabinet = 128;
  s.components = {
      {ComponentKind::kCpu, 1, 90.0, 280.0, 33.0, 0.10},
      {ComponentKind::kGpu, 8, 45.0, 280.0, 31.0, 0.09},  // 4 GPUs x 2 GCDs
      {ComponentKind::kMemory, 1, 30.0, 110.0, 29.0, 0.08},
      {ComponentKind::kNic, 1, 20.0, 35.0, 30.0, 0.15},
  };
  s.sensor_period = common::kSecond;
  s.sample_loss_rate = 0.001;
  s.node_overhead_w = 180.0;
  return s;
}

}  // namespace oda::telemetry
