#include "telemetry/interconnect.hpp"

#include <algorithm>
#include <cmath>

#include "common/bytes.hpp"

namespace oda::telemetry {

using common::ByteReader;
using common::ByteWriter;
using common::Duration;
using common::Rng;
using common::TimePoint;
using sql::DataType;
using sql::Schema;
using sql::Table;
using sql::Value;

CommProfile comm_profile_for(JobArchetype a) {
  switch (a) {
    case JobArchetype::kConstant:  // dense LA: steady halo exchange
      return {8e9, 2e5, false};
    case JobArchetype::kRamp:  // HPL: broadcast/panel traffic, bursty
      return {12e9, 5e4, true};
    case JobArchetype::kPeriodic:  // tightly coupled: collective storms
      return {15e9, 8e5, true};
    case JobArchetype::kPhased:  // compute/IO phases, light comms
      return {3e9, 1e5, false};
    case JobArchetype::kSpiky:  // analytics: shuffle-like bursts
      return {6e9, 4e5, false};
    case JobArchetype::kDecay:  // solver: comms scale with residual work
      return {7e9, 3e5, true};
  }
  return {};
}

InterconnectModel::InterconnectModel(FabricConfig config, Rng rng) : config_(config), rng_(rng) {}

void InterconnectModel::sample(TimePoint t, Duration dt, const JobScheduler& sched,
                               std::vector<NicSample>& nics_out,
                               std::vector<SwitchSample>& switches_out) {
  std::vector<double> switch_load(config_.switches, 0.0);
  const double dt_s = common::to_seconds(dt);

  for (const auto& job : sched.jobs()) {
    if (job.start_time == 0 || job.end_time <= 0 || !job.running_at(t)) continue;
    const CommProfile profile = comm_profile_for(job.archetype);
    Rng jitter = rng_.split(static_cast<std::uint64_t>(job.job_id) ^ static_cast<std::uint64_t>(t));
    Rng shape_rng = jitter.split(1);
    const double util = job.base_util * archetype_utilization(job.archetype, job.phase_at(t), shape_rng);

    // Single-node jobs barely touch the fabric.
    const double fabric_factor = job.num_nodes > 1 ? 1.0 : 0.05;
    // Collective-heavy codes inject in synchronized bursts.
    const double burst = profile.allreduce_heavy && jitter.bernoulli(0.3) ? 1.8 : 1.0;

    for (std::uint32_t node : job.nodes) {
      NicSample s;
      s.time = t;
      s.node_id = node;
      const double rate = std::min(config_.link_bandwidth_bytes_s,
                                   profile.inject_rate * util * fabric_factor * burst *
                                       std::max(0.2, 1.0 + 0.1 * jitter.normal()));
      s.tx_bytes_s = rate;
      s.rx_bytes_s = rate * std::max(0.3, 1.0 + 0.05 * jitter.normal());
      s.messages_s = profile.message_rate * util * fabric_factor;
      const double gb = rate * dt_s / 1e9;
      s.link_errors = static_cast<std::uint32_t>(
          gb * config_.base_error_rate_per_gb + (jitter.bernoulli(0.001) ? 5 : 0));
      switch_load[node % config_.switches] += s.tx_bytes_s;
      nics_out.push_back(s);
    }
  }

  switches_out.reserve(switches_out.size() + config_.switches);
  for (std::uint32_t sw = 0; sw < config_.switches; ++sw) {
    SwitchSample s;
    s.time = t;
    s.switch_id = sw;
    s.throughput_bytes_s = std::min(switch_load[sw], config_.switch_bandwidth_bytes_s);
    s.utilization = std::min(1.0, switch_load[sw] / config_.switch_bandwidth_bytes_s);
    // Congestion stalls rise super-linearly as the switch saturates.
    s.congestion_stall_pct = 100.0 * std::pow(s.utilization, 3.0);
    switches_out.push_back(s);
  }
}

stream::Record encode_nic_sample(const NicSample& s) {
  ByteWriter w;
  w.i64(s.time);
  w.u32(s.node_id);
  w.f64(s.tx_bytes_s);
  w.f64(s.rx_bytes_s);
  w.f64(s.messages_s);
  w.u32(s.link_errors);
  stream::Record rec;
  rec.timestamp = s.time;
  rec.key = "n" + std::to_string(s.node_id);
  auto bytes = w.take();
  rec.payload.assign(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  return rec;
}

NicSample decode_nic_sample(const stream::Record& r) { return decode_nic_sample(std::string_view(r.payload)); }

NicSample decode_nic_sample(std::string_view payload) {
  ByteReader br(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(payload.data()),
                                              payload.size()));
  NicSample s;
  s.time = br.i64();
  s.node_id = br.u32();
  s.tx_bytes_s = br.f64();
  s.rx_bytes_s = br.f64();
  s.messages_s = br.f64();
  s.link_errors = br.u32();
  return s;
}

Schema nic_schema() {
  return Schema{{"time", DataType::kInt64},        {"node_id", DataType::kInt64},
                {"tx_bytes_s", DataType::kFloat64}, {"rx_bytes_s", DataType::kFloat64},
                {"messages_s", DataType::kFloat64}, {"link_errors", DataType::kInt64}};
}

Table nic_samples_to_table(std::span<const stream::RecordView> records) {
  Table t(nic_schema());
  t.reserve(records.size());
  for (const auto& v : records) {
    const NicSample s = decode_nic_sample(v.payload);
    t.append_row({Value(s.time), Value(static_cast<std::int64_t>(s.node_id)), Value(s.tx_bytes_s),
                  Value(s.rx_bytes_s), Value(s.messages_s),
                  Value(static_cast<std::int64_t>(s.link_errors))});
  }
  return t;
}

stream::Record encode_switch_sample(const SwitchSample& s) {
  ByteWriter w;
  w.i64(s.time);
  w.u32(s.switch_id);
  w.f64(s.throughput_bytes_s);
  w.f64(s.utilization);
  w.f64(s.congestion_stall_pct);
  stream::Record rec;
  rec.timestamp = s.time;
  rec.key = "sw" + std::to_string(s.switch_id);
  auto bytes = w.take();
  rec.payload.assign(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  return rec;
}

SwitchSample decode_switch_sample(const stream::Record& r) { return decode_switch_sample(std::string_view(r.payload)); }

SwitchSample decode_switch_sample(std::string_view payload) {
  ByteReader br(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(payload.data()),
                                              payload.size()));
  SwitchSample s;
  s.time = br.i64();
  s.switch_id = br.u32();
  s.throughput_bytes_s = br.f64();
  s.utilization = br.f64();
  s.congestion_stall_pct = br.f64();
  return s;
}

Schema switch_schema() {
  return Schema{{"time", DataType::kInt64},
                {"switch_id", DataType::kInt64},
                {"throughput_bytes_s", DataType::kFloat64},
                {"utilization", DataType::kFloat64},
                {"congestion_stall_pct", DataType::kFloat64}};
}

Table switch_samples_to_table(std::span<const stream::RecordView> records) {
  Table t(switch_schema());
  t.reserve(records.size());
  for (const auto& v : records) {
    const SwitchSample s = decode_switch_sample(v.payload);
    t.append_row({Value(s.time), Value(static_cast<std::int64_t>(s.switch_id)),
                  Value(s.throughput_bytes_s), Value(s.utilization),
                  Value(s.congestion_stall_pct)});
  }
  return t;
}

}  // namespace oda::telemetry
