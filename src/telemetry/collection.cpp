#include "telemetry/collection.hpp"

#include <algorithm>
#include <cmath>

#include "observe/metrics.hpp"

namespace oda::telemetry {

const char* collection_path_name(CollectionPath p) {
  switch (p) {
    case CollectionPath::kInBand: return "in-band agent";
    case CollectionPath::kOutOfBand: return "out-of-band (BMC)";
    case CollectionPath::kPerJobInstr: return "per-job instrumentation";
  }
  return "?";
}

CollectionProperties collection_properties(CollectionPath path, std::size_t sensors_per_node) {
  CollectionProperties p;
  const double s = static_cast<double>(sensors_per_node);
  switch (path) {
    case CollectionPath::kInBand:
      // An agent can poll fast, but every poll steals cycles and its
      // delivery shares the compute fabric with the jobs (loss under load).
      p.min_period = 100 * common::kMillisecond;
      p.node_overhead_fraction = std::min(0.05, 0.0002 * s);  // ~0.4% at 20 sensors
      p.loss_rate = 0.01;
      p.survives_node_crash = false;
      p.sees_app_context = true;
      break;
    case CollectionPath::kOutOfBand:
      // The BMC path is slower and blind to application context, but
      // costs the node nothing and keeps reporting through OS crashes.
      p.min_period = common::kSecond;
      p.node_overhead_fraction = 0.0;
      p.loss_rate = 0.002;
      p.survives_node_crash = true;
      p.sees_app_context = false;
      break;
    case CollectionPath::kPerJobInstr:
      // Library-level instrumentation: perfect attribution, zero
      // steady-state cost, but only exists while an instrumented job runs.
      p.min_period = 10 * common::kSecond;
      p.node_overhead_fraction = 0.001;
      p.loss_rate = 0.0;
      p.survives_node_crash = false;
      p.sees_app_context = true;
      break;
  }
  return p;
}

CollectionPlanCost plan_cost(const SystemSpec& spec, CollectionPath path,
                             common::Duration period) {
  const auto props = collection_properties(path, spec.sensors_per_node());
  CollectionPlanCost cost;
  const auto effective_period = std::max(period, props.min_period);
  const double samples_per_node_day =
      86400.0 / common::to_seconds(effective_period) * static_cast<double>(spec.sensors_per_node());
  const double nodes = static_cast<double>(spec.total_nodes());
  // Overhead scales with polling rate relative to a 1 Hz baseline.
  const double rate_factor = common::to_seconds(common::kSecond) /
                             common::to_seconds(effective_period);
  cost.node_hours_lost_per_day = nodes * 24.0 * props.node_overhead_fraction * rate_factor;
  cost.delivered_fraction = 1.0 - props.loss_rate;
  cost.delivered_samples_per_day = nodes * samples_per_node_day * cost.delivered_fraction;
  return cost;
}

stream::Producer& CollectionChannel::producer_for(const std::string& topic) {
  auto it = producers_.find(topic);
  if (it == producers_.end()) {
    it = producers_.emplace(topic, broker_.producer(topic)).first;
  }
  return it->second;
}

bool CollectionChannel::deliver(const std::string& topic, stream::Record rec) {
  static observe::Counter* delivered =
      observe::default_registry().counter("telemetry.delivered.records");
  static observe::Counter* dropped = observe::default_registry().counter("telemetry.dropped.records");
  const std::size_t bytes = rec.wire_size();
  try {
    // Resolved inside the try: an unknown topic degrades to a counted
    // drop, exactly as the string-lookup produce path did.
    stream::Producer& producer = producer_for(topic);
    retrier_.run("telemetry.collect", [&] {
      chaos::fault_point("telemetry.collect");
      // Copy per attempt: a faulted produce must not leave the record moved-out.
      producer.produce(rec);
    });
  } catch (const std::exception&) {
    // Retry budget spent or a hard fault: the sample becomes a collection
    // gap. The collector itself never goes down over a delivery failure.
    ++stats_.dropped_records;
    stats_.dropped_bytes += bytes;
    stats_.retries = retrier_.stats().retries;
    stats_.backoff_total = retrier_.stats().backoff_total;
    dropped->inc();
    return false;
  }
  delivered->inc();
  ++stats_.delivered_records;
  stats_.delivered_bytes += bytes;
  stats_.retries = retrier_.stats().retries;
  stats_.backoff_total = retrier_.stats().backoff_total;
  return true;
}

}  // namespace oda::telemetry
