// System specifications for the two simulated supercomputer generations.
//
// The paper anonymizes its systems as "Mountain" (Summit-class) and
// "Compass" (Frontier-class); we keep those names. A scale factor
// shrinks node counts so laptops can run the pipeline; volume reports
// extrapolate back to full scale (bench_fig4a).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace oda::telemetry {

enum class ComponentKind : std::uint8_t { kCpu = 0, kGpu = 1, kMemory = 2, kNic = 3, kNode = 4 };
const char* component_name(ComponentKind k);

enum class SensorKind : std::uint8_t { kPowerW = 0, kTempC = 1, kUtil = 2, kEnergyJ = 3 };
const char* sensor_name(SensorKind k);

/// Per-component power/thermal envelope.
struct ComponentSpec {
  ComponentKind kind = ComponentKind::kCpu;
  std::uint8_t count = 1;       ///< per node
  double idle_w = 50.0;
  double peak_w = 300.0;
  double idle_temp_c = 30.0;    ///< steady-state temperature at idle
  double temp_per_watt = 0.12;  ///< delta-T above idle per watt of draw
};

struct SystemSpec {
  std::string name;
  std::size_t cabinets = 0;
  std::size_t nodes_per_cabinet = 0;
  std::vector<ComponentSpec> components;
  common::Duration sensor_period = common::kSecond;  ///< per-sensor sample period
  double sample_loss_rate = 0.001;  ///< fraction of samples dropped (lossy streams, Sec VIII-A)
  double node_overhead_w = 120.0;   ///< fans/VRs/board at node level

  std::size_t total_nodes() const { return cabinets * nodes_per_cabinet; }
  /// Sensors per node: power+temp per component instance, plus node-level
  /// input power and inlet temperature.
  std::size_t sensors_per_node() const;
  std::size_t total_sensors() const { return total_nodes() * sensors_per_node(); }
};

/// Number of GPU instances per node in a spec (0 for CPU-only systems).
std::size_t gpus_per_node(const SystemSpec& spec);

/// Summit-class: 256 cabinets x 18 nodes = 4608 nodes; 2 CPUs + 6 GPUs.
SystemSpec mountain_spec(double scale = 1.0);
/// Frontier-class: 74 cabinets x 128 nodes = 9472 nodes; 1 CPU + 8 GCDs.
SystemSpec compass_spec(double scale = 1.0);

}  // namespace oda::telemetry
