#include "telemetry/simulator.hpp"

#include "common/bytes.hpp"

namespace oda::telemetry {

using common::Duration;
using common::TimePoint;

TopicNames TopicNames::for_system(const std::string& system_name) {
  TopicNames t;
  t.power = "telemetry.power." + system_name;
  t.scheduler = "scheduler.events." + system_name;
  t.syslog = "syslog." + system_name;
  t.facility = "facility.cooling." + system_name;
  t.io = "io.darshan." + system_name;
  t.storage = "storage.ost." + system_name;
  t.nic = "interconnect.nic." + system_name;
  t.fabric = "interconnect.fabric." + system_name;
  return t;
}

FacilitySimulator::FacilitySimulator(SystemSpec spec, stream::Broker& broker, SimulatorConfig config)
    : spec_(std::move(spec)),
      broker_(broker),
      config_(config),
      topics_(TopicNames::for_system(spec_.name)),
      rng_(config.seed),
      scheduler_(spec_.total_nodes(), config.scheduler, rng_.split(1)),
      sensors_(spec_, rng_.split(2)),
      events_(spec_.total_nodes(), config.events, rng_.split(3)),
      io_model_(config.lustre, rng_.split(4)),
      fabric_model_(config.fabric, rng_.split(6)),
      failures_(spec_.total_nodes(), gpus_per_node(spec_), config.failures, rng_.split(5)),
      channel_(broker, chaos::RetryPolicy{}, config.seed ^ 0xc011ec70ull) {
  stream::TopicConfig tc;
  tc.num_partitions = 8;
  // Small segments keep retention granularity fine at simulation scale
  // (a segment is the unit of eviction, as in any log-structured broker).
  tc.segment_bytes = 1 << 20;
  broker_.create_topic(topics_.power, tc);
  broker_.create_topic(topics_.scheduler, {2, 1 << 20, {}});
  broker_.create_topic(topics_.syslog, {4, 1 << 20, {}});
  broker_.create_topic(topics_.facility, {1, 1 << 20, {}});
  broker_.create_topic(topics_.io, {2, 1 << 20, {}});
  broker_.create_topic(topics_.storage, {2, 1 << 20, {}});
  broker_.create_topic(topics_.nic, {4, 1 << 20, {}});
  broker_.create_topic(topics_.fabric, {1, 1 << 20, {}});
}

void FacilitySimulator::step(Duration dt) {
  const TimePoint target = now_ + dt;
  failures_.schedule_until(target);

  // Scheduler events.
  const auto sched_events = scheduler_.advance_to(target);
  for (const auto& ev : sched_events) {
    const Job* job = scheduler_.find_job(ev.job_id);
    if (!job) continue;
    auto rec = encode_job_event(ev, *job);
    stats_.scheduler_bytes += rec.wire_size();
    ++stats_.scheduler_records;
    channel_.deliver(topics_.scheduler, std::move(rec));
  }

  // Sensor packets at every sample tick in (now_, target].
  std::vector<TelemetryPacket> packets;
  while (last_sample_ + spec_.sensor_period <= target) {
    last_sample_ += spec_.sensor_period;
    packets.clear();
    sensors_.sample_all(last_sample_, spec_.sensor_period, scheduler_, packets, &failures_);
    for (const auto& pkt : packets) {
      auto rec = encode_packet(pkt);
      stats_.power_bytes += rec.wire_size();
      ++stats_.power_records;
      channel_.deliver(topics_.power, std::move(rec));
    }
  }

  // Facility cooling sensors.
  while (last_facility_ + config_.facility_period <= target) {
    last_facility_ += config_.facility_period;
    emit_facility_sample(last_facility_);
  }

  // Per-job I/O counters + OST server telemetry + interconnect counters.
  std::vector<IoCounters> io_counters;
  std::vector<OstSample> ost_samples;
  std::vector<NicSample> nic_samples;
  std::vector<SwitchSample> switch_samples;
  while (last_io_ + config_.io_period <= target) {
    last_io_ += config_.io_period;
    io_counters.clear();
    ost_samples.clear();
    nic_samples.clear();
    switch_samples.clear();
    io_model_.sample(last_io_, config_.io_period, scheduler_, io_counters, ost_samples);
    fabric_model_.sample(last_io_, config_.io_period, scheduler_, nic_samples, switch_samples);
    for (const auto& c : io_counters) {
      auto rec = encode_io_counters(c);
      stats_.io_bytes += rec.wire_size();
      ++stats_.io_records;
      channel_.deliver(topics_.io, std::move(rec));
    }
    for (const auto& s : ost_samples) {
      auto rec = encode_ost_sample(s);
      stats_.storage_bytes += rec.wire_size();
      ++stats_.storage_records;
      channel_.deliver(topics_.storage, std::move(rec));
    }
    for (const auto& s : nic_samples) {
      auto rec = encode_nic_sample(s);
      stats_.nic_bytes += rec.wire_size();
      ++stats_.nic_records;
      channel_.deliver(topics_.nic, std::move(rec));
    }
    for (const auto& s : switch_samples) {
      auto rec = encode_switch_sample(s);
      stats_.fabric_bytes += rec.wire_size();
      ++stats_.fabric_records;
      channel_.deliver(topics_.fabric, std::move(rec));
    }
  }

  // Syslog events: background chatter plus failure xid storms.
  auto log_events = events_.generate(now_, target);
  auto failure_events = failures_.events_in(now_, target);
  log_events.insert(log_events.end(), failure_events.begin(), failure_events.end());
  for (auto& ev : log_events) {
    auto rec = encode_log_event(ev);
    stats_.syslog_bytes += rec.wire_size();
    ++stats_.syslog_records;
    channel_.deliver(topics_.syslog, std::move(rec));
  }

  now_ = target;
}

void FacilitySimulator::run_until(TimePoint t) {
  while (now_ < t) step(std::min(spec_.sensor_period, t - now_));
}

void FacilitySimulator::emit_facility_sample(TimePoint t) {
  // Coarse plant response: supply temperature drifts with IT load
  // (the detailed transient model lives in oda::twin).
  const double it_mw = sensors_.total_it_power_w() / 1e6;
  const double target_supply = 21.0 + 0.35 * it_mw;
  cooling_supply_temp_c_ += 0.05 * (target_supply - cooling_supply_temp_c_);
  const double return_temp = cooling_supply_temp_c_ + 8.0 + 1.8 * it_mw;
  const double flow_lps = 400.0 + 120.0 * it_mw;

  TelemetryPacket pkt;
  pkt.timestamp = t;
  pkt.node_id = 0xffffffff;  // facility pseudo-node
  pkt.readings = {
      {SensorId{ComponentKind::kNode, 1, SensorKind::kPowerW}.encode(), sensors_.total_it_power_w()},
      {SensorId{ComponentKind::kNode, 2, SensorKind::kTempC}.encode(), cooling_supply_temp_c_},
      {SensorId{ComponentKind::kNode, 3, SensorKind::kTempC}.encode(), return_temp},
      {SensorId{ComponentKind::kNode, 4, SensorKind::kUtil}.encode(), flow_lps},
  };
  auto rec = encode_packet(pkt);
  stats_.facility_bytes += rec.wire_size();
  ++stats_.facility_records;
  channel_.deliver(topics_.facility, std::move(rec));
}

sql::Table FacilitySimulator::sample_bronze(TimePoint t0, TimePoint t1) {
  sql::Table bronze(bronze_schema());
  std::vector<TelemetryPacket> packets;
  for (TimePoint t = t0; t < t1; t += spec_.sensor_period) {
    scheduler_.advance_to(t);
    packets.clear();
    sensors_.sample_all(t, spec_.sensor_period, scheduler_, packets);
    for (const auto& pkt : packets) append_packet_rows(pkt, bronze);
  }
  if (t1 > now_) now_ = t1;
  return bronze;
}

}  // namespace oda::telemetry
